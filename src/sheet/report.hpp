// report.hpp — rendering PlayResults as the paper's spreadsheet tables.
//
// The ASCII renderer mirrors Figure 2's columns (row name, model,
// parameters, access rate, switched capacitance, energy/op, power); the
// CSV form feeds external tooling; the breakdown renderer is the
// per-module drill-down page behind each row's hyperlink.
#pragma once

#include <string>

#include "sheet/design.hpp"

namespace powerplay::sheet {

struct ReportOptions {
  bool show_params = true;
  bool show_capacitance = true;
  bool show_energy = true;
  bool show_area = false;
  bool show_delay = false;
  int indent = 0;                ///< nesting level for macro drill-down
  bool recurse_macros = false;   ///< inline macro sub-tables
};

/// Figure 2 / Figure 5 style ASCII table.
std::string to_table(const PlayResult& result, const ReportOptions& opt = {});

/// Machine-readable CSV: name, model, power_w, energy_per_op_j,
/// csw_f, area_m2, params...
std::string to_csv(const PlayResult& result);

/// EQ 1 term-by-term breakdown of one row (the documentation page).
std::string to_breakdown(const RowResult& row);

/// One-line summary: "<design>: <total> (N rows, M sweeps)".
std::string summary_line(const PlayResult& result);

/// First-cut compositional timing over a Play result (the paper notes
/// delay composition was "currently being examined"; this is the
/// natural pipeline interpretation).  Rows that bound a local `stage`
/// parameter are grouped by its integer value (rows without one share
/// stage 0); the critical path of each stage is its slowest row, and
/// the maximum clock rate is 1 / max-stage-delay.
struct TimingSummary {
  struct Stage {
    int stage = 0;
    std::string critical_row;
    units::Time delay{0};
  };
  std::vector<Stage> stages;       ///< ordered by stage number
  units::Time critical_path{0};    ///< slowest stage
  std::string critical_row;
  /// 1 / critical_path; zero when no row reports a delay.
  units::Frequency max_clock{0};
};
TimingSummary timing_summary(const PlayResult& result);
std::string timing_table(const TimingSummary& summary);

}  // namespace powerplay::sheet
