#include "sheet/sweep.hpp"

#include <cmath>
#include <sstream>

#include "units/units.hpp"

namespace powerplay::sheet {

std::vector<SweepPoint> sweep_global(const Design& design,
                                     const std::string& param,
                                     const std::vector<double>& values) {
  Design work = design;
  std::vector<SweepPoint> out;
  out.reserve(values.size());
  for (double v : values) {
    work.globals().set(param, v);
    out.push_back(SweepPoint{v, work.play()});
  }
  return out;
}

std::vector<SweepPoint> sweep_row_param(const Design& design,
                                        const std::string& row,
                                        const std::string& param,
                                        const std::vector<double>& values) {
  Design work = design;
  Row* r = work.find_row(row);
  if (r == nullptr) {
    throw expr::ExprError("sweep_row_param: no row named '" + row +
                          "' in design '" + design.name() + "'");
  }
  std::vector<SweepPoint> out;
  out.reserve(values.size());
  for (double v : values) {
    r->params.set(param, v);
    out.push_back(SweepPoint{v, work.play()});
  }
  return out;
}

GridSweep sweep_grid(const Design& design, const std::string& x_param,
                     const std::vector<double>& xs,
                     const std::string& y_param,
                     const std::vector<double>& ys) {
  if (x_param == y_param) {
    throw expr::ExprError("sweep_grid: the two parameters must differ");
  }
  GridSweep out;
  out.x_param = x_param;
  out.y_param = y_param;
  out.xs = xs;
  out.ys = ys;
  Design work = design;
  out.results.reserve(xs.size());
  for (double x : xs) {
    work.globals().set(x_param, x);
    std::vector<PlayResult> row;
    row.reserve(ys.size());
    for (double y : ys) {
      work.globals().set(y_param, y);
      row.push_back(work.play());
    }
    out.results.push_back(std::move(row));
  }
  return out;
}

std::string grid_table(const GridSweep& grid) {
  std::ostringstream os;
  os << grid.x_param << " \\ " << grid.y_param;
  for (double y : grid.ys) os << '\t' << y;
  os << '\n';
  for (std::size_t i = 0; i < grid.xs.size(); ++i) {
    os << grid.xs[i];
    for (std::size_t j = 0; j < grid.ys.size(); ++j) {
      os << '\t'
         << units::format_si(
                grid.results[i][j].total.total_power().si(), "W");
    }
    os << '\n';
  }
  return os.str();
}

std::vector<double> linspace(double from, double to, int points) {
  if (points < 2) return {from};
  std::vector<double> out;
  out.reserve(points);
  const double step = (to - from) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(from + step * i);
  return out;
}

std::vector<double> geomspace(double from, double to, int points) {
  if (from <= 0 || to <= 0) {
    throw expr::ExprError("geomspace: endpoints must be positive");
  }
  if (points < 2) return {from};
  std::vector<double> out;
  out.reserve(points);
  const double ratio = std::pow(to / from, 1.0 / (points - 1));
  double v = from;
  for (int i = 0; i < points; ++i) {
    out.push_back(v);
    v *= ratio;
  }
  return out;
}

std::string sweep_table(const std::string& param,
                        const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  os << param << "\ttotal power\n";
  for (const SweepPoint& p : points) {
    os << p.value << '\t'
       << units::format_si(p.result.total.total_power().si(), "W") << '\n';
  }
  return os.str();
}

}  // namespace powerplay::sheet
