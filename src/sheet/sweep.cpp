#include "sheet/sweep.hpp"

#include <atomic>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "units/units.hpp"

namespace powerplay::sheet {

void require_global(const Design& design, const std::string& param,
                    const char* caller) {
  if (!design.globals().lookup(param).has_value()) {
    throw expr::ExprError(std::string(caller) + ": design '" + design.name() +
                          "' has no global parameter named '" + param +
                          "' — sweeping it would create a binding no row "
                          "reads");
  }
}

void require_globals(const Design& design,
                     const std::vector<std::string>& params,
                     const char* caller) {
  std::string unknown;
  std::size_t missing = 0;
  for (const std::string& param : params) {
    if (design.globals().lookup(param).has_value()) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "'" + param + "'";
    ++missing;
  }
  if (missing == 0) return;
  throw expr::ExprError(
      std::string(caller) + ": design '" + design.name() + "' has no global " +
      (missing == 1 ? "parameter named " : "parameters named ") + unknown +
      " — sweeping them would create bindings no row reads");
}

void require_row_param(const Design& design, const Row& row,
                       const std::string& param) {
  if (row.params.has_local(param)) return;
  if (row.is_macro()) {
    if (row.macro->globals().lookup(param).has_value()) return;
  } else if (row.model->find_param(param) != nullptr) {
    return;
  }
  throw expr::ExprError("sweep_row_param: row '" + row.name + "' (" +
                        row.model_name() + ") in design '" + design.name() +
                        "' has no parameter named '" + param + "'");
}

namespace {

PlayResult play_point(const Design& work, const PlayFn& play) {
  return play ? play(work) : work.play();
}

}  // namespace

std::vector<SweepPoint> sweep_global(const Design& design,
                                     const std::string& param,
                                     const std::vector<double>& values) {
  require_global(design, param, "sweep_global");
  Design work = design;
  std::vector<SweepPoint> out;
  out.reserve(values.size());
  for (double v : values) {
    work.globals().set(param, v);
    out.push_back(SweepPoint{v, work.play()});
  }
  return out;
}

std::vector<SweepPoint> sweep_global(engine::Executor& executor,
                                     const Design& design,
                                     const std::string& param,
                                     const std::vector<double>& values,
                                     const PlayFn& play,
                                     const SweepProgress& progress) {
  require_global(design, param, "sweep_global");
  std::vector<SweepPoint> out(values.size());
  std::atomic<std::size_t> done{0};
  engine::parallel_for(executor, values.size(), [&](std::size_t i) {
    Design work = design;
    work.globals().set(param, values[i]);
    out[i] = SweepPoint{values[i], play_point(work, play)};
    const std::size_t finished = done.fetch_add(1) + 1;
    if (progress) progress(finished, values.size());
  });
  return out;
}

std::vector<SweepPoint> sweep_row_param(const Design& design,
                                        const std::string& row,
                                        const std::string& param,
                                        const std::vector<double>& values) {
  Design work = design;
  Row* r = work.find_row(row);
  if (r == nullptr) {
    throw expr::ExprError("sweep_row_param: no row named '" + row +
                          "' in design '" + design.name() + "'");
  }
  require_row_param(design, *r, param);
  std::vector<SweepPoint> out;
  out.reserve(values.size());
  for (double v : values) {
    r->params.set(param, v);
    out.push_back(SweepPoint{v, work.play()});
  }
  return out;
}

std::vector<SweepPoint> sweep_row_param(engine::Executor& executor,
                                        const Design& design,
                                        const std::string& row,
                                        const std::string& param,
                                        const std::vector<double>& values,
                                        const PlayFn& play,
                                        const SweepProgress& progress) {
  const Row* r = design.find_row(row);
  if (r == nullptr) {
    throw expr::ExprError("sweep_row_param: no row named '" + row +
                          "' in design '" + design.name() + "'");
  }
  require_row_param(design, *r, param);
  std::vector<SweepPoint> out(values.size());
  std::atomic<std::size_t> done{0};
  engine::parallel_for(executor, values.size(), [&](std::size_t i) {
    Design work = design;
    work.find_row(row)->params.set(param, values[i]);
    out[i] = SweepPoint{values[i], play_point(work, play)};
    const std::size_t finished = done.fetch_add(1) + 1;
    if (progress) progress(finished, values.size());
  });
  return out;
}

GridSweep sweep_grid(const Design& design, const std::string& x_param,
                     const std::vector<double>& xs,
                     const std::string& y_param,
                     const std::vector<double>& ys) {
  if (x_param == y_param) {
    throw expr::ExprError("sweep_grid: the two parameters must differ");
  }
  require_globals(design, {x_param, y_param}, "sweep_grid");
  GridSweep out;
  out.x_param = x_param;
  out.y_param = y_param;
  out.xs = xs;
  out.ys = ys;
  Design work = design;
  out.results.reserve(xs.size());
  for (double x : xs) {
    work.globals().set(x_param, x);
    std::vector<PlayResult> row;
    row.reserve(ys.size());
    for (double y : ys) {
      work.globals().set(y_param, y);
      row.push_back(work.play());
    }
    out.results.push_back(std::move(row));
  }
  return out;
}

GridSweep sweep_grid(engine::Executor& executor, const Design& design,
                     const std::string& x_param,
                     const std::vector<double>& xs,
                     const std::string& y_param,
                     const std::vector<double>& ys,
                     const PlayFn& play,
                     const SweepProgress& progress) {
  if (x_param == y_param) {
    throw expr::ExprError("sweep_grid: the two parameters must differ");
  }
  require_globals(design, {x_param, y_param}, "sweep_grid");
  GridSweep out;
  out.x_param = x_param;
  out.y_param = y_param;
  out.xs = xs;
  out.ys = ys;
  out.results.assign(xs.size(), std::vector<PlayResult>(ys.size()));
  const std::size_t total = xs.size() * ys.size();
  std::atomic<std::size_t> done{0};
  engine::parallel_for(executor, total, [&](std::size_t k) {
    const std::size_t i = k / ys.size();
    const std::size_t j = k % ys.size();
    Design work = design;
    work.globals().set(x_param, xs[i]);
    work.globals().set(y_param, ys[j]);
    out.results[i][j] = play_point(work, play);
    const std::size_t finished = done.fetch_add(1) + 1;
    if (progress) progress(finished, total);
  });
  return out;
}

std::string grid_table(const GridSweep& grid) {
  std::ostringstream os;
  os << grid.x_param << " \\ " << grid.y_param;
  for (double y : grid.ys) os << '\t' << y;
  os << '\n';
  for (std::size_t i = 0; i < grid.xs.size(); ++i) {
    os << grid.xs[i];
    for (std::size_t j = 0; j < grid.ys.size(); ++j) {
      os << '\t'
         << units::format_si(
                grid.results[i][j].total.total_power().si(), "W");
    }
    os << '\n';
  }
  return os.str();
}

std::string grid_csv(const GridSweep& grid) {
  std::ostringstream os;
  os << std::setprecision(9);
  os << grid.x_param << ',' << grid.y_param
     << ",total_power_w,energy_per_op_j\n";
  for (std::size_t i = 0; i < grid.xs.size(); ++i) {
    for (std::size_t j = 0; j < grid.ys.size(); ++j) {
      const PlayResult& r = grid.results[i][j];
      os << grid.xs[i] << ',' << grid.ys[j] << ','
         << r.total.total_power().si() << ','
         << r.total.energy_per_op.si() << '\n';
    }
  }
  return os.str();
}

std::string sweep_csv(const std::string& param,
                      const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  os << std::setprecision(9);
  os << param << ",total_power_w,energy_per_op_j\n";
  for (const SweepPoint& p : points) {
    os << p.value << ',' << p.result.total.total_power().si() << ','
       << p.result.total.energy_per_op.si() << '\n';
  }
  return os.str();
}

std::vector<double> linspace(double from, double to, int points) {
  if (points < 2) return {from};
  std::vector<double> out;
  out.reserve(points);
  const double step = (to - from) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(from + step * i);
  return out;
}

std::vector<double> geomspace(double from, double to, int points) {
  if (from <= 0 || to <= 0) {
    throw expr::ExprError("geomspace: endpoints must be positive");
  }
  if (points < 2) return {from};
  std::vector<double> out;
  out.reserve(points);
  const double ratio = std::pow(to / from, 1.0 / (points - 1));
  double v = from;
  for (int i = 0; i < points; ++i) {
    out.push_back(v);
    v *= ratio;
  }
  return out;
}

std::string sweep_table(const std::string& param,
                        const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  os << param << "\ttotal power\n";
  for (const SweepPoint& p : points) {
    os << p.value << '\t'
       << units::format_si(p.result.total.total_power().si(), "W") << '\n';
  }
  return os.str();
}

}  // namespace powerplay::sheet
