// budget.hpp — early power budgeting over a Play result.
//
// "This enables power budgeting at an early stage and gives a good basis
// for making architectural and algorithmic decisions."  A budget assigns
// an allowance to each row (and optionally to the whole design); the
// report shows actuals, slack, and who blew it — the spreadsheet-era
// version of a power sign-off.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sheet/design.hpp"

namespace powerplay::sheet {

/// One row's allowance.
struct BudgetLine {
  std::string row;
  units::Power allowance;
};

struct BudgetReport {
  struct Line {
    std::string row;
    units::Power allowance;
    units::Power actual;
    units::Power slack;   ///< allowance - actual (negative = over)
    bool over = false;
  };
  std::vector<Line> lines;
  units::Power total_allowance;
  units::Power total_actual;   ///< whole-design total (all rows)
  bool any_over = false;

  /// True when every budgeted row and the design total (if set) fit.
  [[nodiscard]] bool pass() const { return !any_over; }
};

/// Evaluate `lines` (plus an optional whole-design allowance) against a
/// Play result.  Throws ExprError when a budgeted row does not exist.
BudgetReport check_budget(const PlayResult& result,
                          const std::vector<BudgetLine>& lines,
                          std::optional<units::Power> design_total = {});

/// ASCII sign-off table.
std::string budget_table(const BudgetReport& report);

}  // namespace powerplay::sheet
