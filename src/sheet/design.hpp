// design.hpp — the PowerPlay design spreadsheet ("playground").
//
// A Design is the spreadsheet of Figures 2 and 5: an ordered list of rows,
// each an instance of a library model or a nested sub-design (macro),
// plus a set of global parameters.  Row parameters may be literals or
// expressions over inherited parameters ("Subcircuits may be defined to
// inherit global parameters"), and over other rows' results through the
// intermodel functions:
//
//   rowpower("Name")   — total power of row "Name" [W]
//   rowarea("Name")    — area of row "Name" [m^2]
//   rowenergy("Name")  — energy per operation of row "Name" [J]
//   rowdelay("Name")   — delay of row "Name" [s]
//   totalpower()       — sum of all rows' total power [W]
//   totalarea()        — sum of all rows' areas [m^2]
//
// Pressing Play evaluates every row hierarchically.  Intermodel terms are
// resolved by fixed-point iteration: rows are recomputed against the
// previous sweep's results until total power converges (a DC-DC converter
// fed from totalpower() converges whenever its efficiency exceeds 50%).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/eval.hpp"
#include "model/model.hpp"

namespace powerplay::sheet {

class Design;

/// One spreadsheet row: a model instance or a macro (sub-design).
struct Row {
  std::string name;
  model::ModelPtr model;                  ///< set for primitive rows
  std::shared_ptr<const Design> macro;    ///< set for macro rows
  expr::Scope params;                     ///< local bindings (literals/formulas)
  std::string note;                       ///< free-form documentation
  /// Disabled rows stay on the sheet (alternatives under consideration)
  /// but are skipped by Play and invisible to the intermodel functions.
  bool enabled = true;

  [[nodiscard]] bool is_macro() const { return macro != nullptr; }
  [[nodiscard]] std::string model_name() const;
};

struct PlayResult;

/// Result of evaluating one row.
struct RowResult {
  std::string name;
  std::string model_name;
  model::Estimate estimate;
  /// Evaluated values of the row's local parameters, for display.
  std::vector<std::pair<std::string, double>> shown_params;
  /// Drill-down results for macro rows (the Figure 5 hyperlink targets).
  std::shared_ptr<const PlayResult> sub_result;
};

/// Result of one Play press.
struct PlayResult {
  std::string design_name;
  std::vector<RowResult> rows;
  model::Estimate total;
  int iterations = 0;  ///< fixed-point sweeps used (1 = no intermodel terms)

  [[nodiscard]] const RowResult* find_row(const std::string& name) const;
};

class Design {
 public:
  explicit Design(std::string name, std::string description = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  void set_description(std::string d) { description_ = std::move(d); }

  /// Global parameters (supply voltage, clock frequency, ...).
  expr::Scope& globals() { return globals_; }
  [[nodiscard]] const expr::Scope& globals() const { return globals_; }

  /// Append a primitive row.  Row names must be unique within a design
  /// (they are the intermodel-function keys); throws ExprError otherwise.
  Row& add_row(std::string row_name, model::ModelPtr m);

  /// Append a macro row instantiating a sub-design.
  Row& add_macro(std::string row_name, std::shared_ptr<const Design> sub);

  void remove_row(const std::string& row_name);

  [[nodiscard]] Row* find_row(const std::string& row_name);
  [[nodiscard]] const Row* find_row(const std::string& row_name) const;
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::vector<Row>& rows() { return rows_; }

  /// Register a custom function usable in this design's parameter
  /// formulas (e.g. an activity model: alpha = dbt_alpha(...)).  Custom
  /// functions are design-local and shadow nothing: registering a name
  /// that collides with a builtin or intermodel function throws.
  void add_function(const std::string& name, expr::Function fn);

  /// Look up a custom function registered above; nullptr when absent.
  /// The plan compiler (plan.hpp) resolves design-local calls through
  /// this at compile time.
  [[nodiscard]] const expr::Function* find_function(
      const std::string& name) const {
    const auto it = functions_.find(name);
    return it == functions_.end() ? nullptr : &it->second;
  }

  /// Names of the custom functions registered above (sorted).  The
  /// evaluation engine folds these into its cache fingerprint: a
  /// std::function has no hashable content, so custom functions are
  /// identified by name and assumed pure.
  [[nodiscard]] std::vector<std::string> function_names() const;

  /// The Play button.  `env` is the enclosing scope when this design is
  /// evaluated as a macro; top-level designs pass nullptr.
  [[nodiscard]] PlayResult play(const expr::Scope* env = nullptr) const;

  /// Maximum fixed-point sweeps before Play reports divergence.
  static constexpr int kMaxIterations = 50;

 private:
  std::string name_;
  std::string description_;
  expr::Scope globals_;
  std::vector<Row> rows_;
  std::map<std::string, expr::Function> functions_;
};

/// Adapter exposing a Design as a library Model (hierarchical
/// macro-modeling: "It should be possible to lump a modeled design ...
/// into a single macro that can be used at higher levels of the system
/// design, or re-used in other designs").  The macro's parameters are the
/// sub-design's global names; instantiation-scope bindings override them.
class DesignMacroModel final : public model::Model {
 public:
  explicit DesignMacroModel(std::shared_ptr<const Design> design);

  [[nodiscard]] model::Estimate evaluate(
      const model::ParamReader& p) const override;

  [[nodiscard]] const std::shared_ptr<const Design>& design() const {
    return design_;
  }

 private:
  std::shared_ptr<const Design> design_;
};

}  // namespace powerplay::sheet
