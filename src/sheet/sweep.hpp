// sweep.hpp — what-if exploration over a design.
//
// "The table is parameterized; that is, parameters such as bit-widths and
// supply voltages can be varied dynamically."  A sweep re-Plays the
// design across a set of values for one global parameter and collects the
// results — the engine behind voltage/frequency trade-off curves and the
// instant what-if loop of the Figure 4 form.
//
// Every entry point has two forms: the original serial loop, and an
// engine-backed overload taking an engine::Executor that Plays the
// points concurrently.  Each point clones the design, so points are
// embarrassingly parallel and the two forms are bit-identical.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "sheet/design.hpp"

namespace powerplay::sheet {

struct SweepPoint {
  double value;
  PlayResult result;
};

/// Optional per-point completion callback for the parallel overloads
/// (drives the async job API's progress counter).  Called as
/// progress(done_so_far, total); may run on any executor thread.
using SweepProgress = std::function<void(std::size_t, std::size_t)>;

/// Pluggable evaluation hook: maps a configured design clone to its
/// PlayResult.  Default ({}) plays directly; the evaluation engine
/// substitutes a memoizing version (engine::EvalEngine).
using PlayFn = std::function<PlayResult(const Design&)>;

/// Validation shared with the plan-backed engine sweeps: a sweep over a
/// name Scope::set would silently *create* returns N identical points
/// (the classic typo trap), so require an existing global binding up
/// front.  `caller` prefixes the error message ("sweep_global", ...).
void require_global(const Design& design, const std::string& param,
                    const char* caller);

/// Multi-parameter form: checks every name and reports *all* unknown
/// parameters in one ExprError (a multi-axis explore request with two
/// typos should fail with a complete message, not one name at a time).
void require_globals(const Design& design,
                     const std::vector<std::string>& params,
                     const char* caller);

/// A row parameter is sweepable when the row already binds it, when the
/// row's model declares it, or (macro rows) when the sub-design has it
/// as a global; throws ExprError otherwise.
void require_row_param(const Design& design, const Row& row,
                       const std::string& param);

/// Re-Play `design` once per value of global parameter `param`.
/// The design itself is not modified.  Throws ExprError when `param`
/// is not an existing global (a silent Scope::set would otherwise
/// *create* the parameter and return N identical points for a typo).
std::vector<SweepPoint> sweep_global(const Design& design,
                                     const std::string& param,
                                     const std::vector<double>& values);

/// Parallel variant: points Play concurrently on `executor`.
std::vector<SweepPoint> sweep_global(engine::Executor& executor,
                                     const Design& design,
                                     const std::string& param,
                                     const std::vector<double>& values,
                                     const PlayFn& play = {},
                                     const SweepProgress& progress = {});

/// Same, over a row-local parameter (rows addressed by name).  The
/// parameter must already be bound on the row, be one of the row
/// model's declared parameters, or (for macro rows) a global of the
/// sub-design; otherwise ExprError.
std::vector<SweepPoint> sweep_row_param(const Design& design,
                                        const std::string& row,
                                        const std::string& param,
                                        const std::vector<double>& values);

std::vector<SweepPoint> sweep_row_param(engine::Executor& executor,
                                        const Design& design,
                                        const std::string& row,
                                        const std::string& param,
                                        const std::vector<double>& values,
                                        const PlayFn& play = {},
                                        const SweepProgress& progress = {});

/// Two-parameter grid sweep (e.g. the classic voltage x frequency
/// exploration plane).  result[i][j] is the Play at xs[i], ys[j].
struct GridSweep {
  std::string x_param;
  std::string y_param;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::vector<PlayResult>> results;  ///< [x][y]
};
GridSweep sweep_grid(const Design& design, const std::string& x_param,
                     const std::vector<double>& xs,
                     const std::string& y_param,
                     const std::vector<double>& ys);

GridSweep sweep_grid(engine::Executor& executor, const Design& design,
                     const std::string& x_param,
                     const std::vector<double>& xs,
                     const std::string& y_param,
                     const std::vector<double>& ys,
                     const PlayFn& play = {},
                     const SweepProgress& progress = {});

/// Render a grid as a total-power matrix table.
std::string grid_table(const GridSweep& grid);

/// Machine-readable long-form CSV: one line per grid point,
/// `<x_param>,<y_param>,total_power_w,energy_per_op_j` (the /job result
/// endpoint serves this form).
std::string grid_csv(const GridSweep& grid);

/// CSV for a one-parameter sweep: `<param>,total_power_w,energy_per_op_j`.
std::string sweep_csv(const std::string& param,
                      const std::vector<SweepPoint>& points);

/// Inclusive linear range helper: {from, from+step, ..., to}.
std::vector<double> linspace(double from, double to, int points);

/// Geometric range helper: {from, from*ratio, ...} up to and incl. `to`.
std::vector<double> geomspace(double from, double to, int points);

/// Render a sweep as a two-column table (value, total power).
std::string sweep_table(const std::string& param,
                        const std::vector<SweepPoint>& points);

}  // namespace powerplay::sheet
