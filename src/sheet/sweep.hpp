// sweep.hpp — what-if exploration over a design.
//
// "The table is parameterized; that is, parameters such as bit-widths and
// supply voltages can be varied dynamically."  A sweep re-Plays the
// design across a set of values for one global parameter and collects the
// results — the engine behind voltage/frequency trade-off curves and the
// instant what-if loop of the Figure 4 form.
#pragma once

#include <string>
#include <vector>

#include "sheet/design.hpp"

namespace powerplay::sheet {

struct SweepPoint {
  double value;
  PlayResult result;
};

/// Re-Play `design` once per value of global parameter `param`.
/// The design itself is not modified.
std::vector<SweepPoint> sweep_global(const Design& design,
                                     const std::string& param,
                                     const std::vector<double>& values);

/// Same, over a row-local parameter (rows addressed by name).
std::vector<SweepPoint> sweep_row_param(const Design& design,
                                        const std::string& row,
                                        const std::string& param,
                                        const std::vector<double>& values);

/// Two-parameter grid sweep (e.g. the classic voltage x frequency
/// exploration plane).  result[i][j] is the Play at xs[i], ys[j].
struct GridSweep {
  std::string x_param;
  std::string y_param;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::vector<PlayResult>> results;  ///< [x][y]
};
GridSweep sweep_grid(const Design& design, const std::string& x_param,
                     const std::vector<double>& xs,
                     const std::string& y_param,
                     const std::vector<double>& ys);

/// Render a grid as a total-power matrix table.
std::string grid_table(const GridSweep& grid);

/// Inclusive linear range helper: {from, from+step, ..., to}.
std::vector<double> linspace(double from, double to, int points);

/// Geometric range helper: {from, from*ratio, ...} up to and incl. `to`.
std::vector<double> geomspace(double from, double to, int points);

/// Render a sweep as a two-column table (value, total power).
std::string sweep_table(const std::string& param,
                        const std::vector<SweepPoint>& points);

}  // namespace powerplay::sheet
