#include "sheet/budget.hpp"

#include <sstream>

namespace powerplay::sheet {

using units::Power;

BudgetReport check_budget(const PlayResult& result,
                          const std::vector<BudgetLine>& lines,
                          std::optional<Power> design_total) {
  BudgetReport report;
  report.total_actual = result.total.total_power();

  for (const BudgetLine& line : lines) {
    const RowResult* row = result.find_row(line.row);
    if (row == nullptr) {
      throw expr::ExprError("budget references unknown row '" + line.row +
                            "' in design '" + result.design_name + "'");
    }
    BudgetReport::Line out;
    out.row = line.row;
    out.allowance = line.allowance;
    out.actual = row->estimate.total_power();
    out.slack = out.allowance - out.actual;
    out.over = out.slack.si() < 0.0;
    report.any_over = report.any_over || out.over;
    report.total_allowance += line.allowance;
    report.lines.push_back(std::move(out));
  }

  if (design_total.has_value()) {
    BudgetReport::Line total;
    total.row = "(design total)";
    total.allowance = *design_total;
    total.actual = report.total_actual;
    total.slack = total.allowance - total.actual;
    total.over = total.slack.si() < 0.0;
    report.any_over = report.any_over || total.over;
    report.lines.push_back(std::move(total));
  }
  return report;
}

std::string budget_table(const BudgetReport& report) {
  std::ostringstream os;
  os << "power budget sign-off\n";
  for (const auto& line : report.lines) {
    os << "  " << line.row << ": " << units::to_string(line.actual)
       << " of " << units::to_string(line.allowance) << " ("
       << (line.over ? "OVER by " : "slack ")
       << units::format_si(std::fabs(line.slack.si()), "W") << ")\n";
  }
  os << (report.pass() ? "PASS" : "FAIL") << ": design total "
     << units::to_string(report.total_actual) << "\n";
  return os.str();
}

}  // namespace powerplay::sheet
