#include "sheet/design.hpp"

#include <algorithm>
#include <limits>
#include <cmath>

namespace powerplay::sheet {

using model::Estimate;

namespace {

const std::vector<std::string>& intermodel_function_names() {
  static const std::vector<std::string> names = {
      "rowpower", "rowarea", "rowenergy", "rowdelay", "totalpower",
      "totalarea"};
  return names;
}

bool is_intermodel(const std::string& fn) {
  const auto& names = intermodel_function_names();
  return std::find(names.begin(), names.end(), fn) != names.end();
}

std::string need_row_name(const std::vector<expr::Value>& args,
                          const char* fn) {
  if (args.size() != 1 || !std::holds_alternative<std::string>(args[0])) {
    throw expr::ExprError(std::string(fn) +
                          ": expects a single row-name string argument, "
                          "e.g. " +
                          fn + "(\"Read Bank\")");
  }
  return std::get<std::string>(args[0]);
}

}  // namespace

std::string Row::model_name() const {
  if (is_macro()) return "macro:" + macro->name();
  return model->name();
}

const RowResult* PlayResult::find_row(const std::string& name) const {
  for (const RowResult& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Design::Design(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {}

Row& Design::add_row(std::string row_name, model::ModelPtr m) {
  if (m == nullptr) {
    throw expr::ExprError("add_row('" + row_name + "'): null model");
  }
  if (find_row(row_name) != nullptr) {
    throw expr::ExprError("design '" + name_ + "' already has a row named '" +
                          row_name + "'");
  }
  rows_.push_back(Row{std::move(row_name), std::move(m), nullptr, {}, {}, true});
  return rows_.back();
}

Row& Design::add_macro(std::string row_name,
                       std::shared_ptr<const Design> sub) {
  if (sub == nullptr) {
    throw expr::ExprError("add_macro('" + row_name + "'): null design");
  }
  if (find_row(row_name) != nullptr) {
    throw expr::ExprError("design '" + name_ + "' already has a row named '" +
                          row_name + "'");
  }
  rows_.push_back(Row{std::move(row_name), nullptr, std::move(sub), {}, {}, true});
  return rows_.back();
}

void Design::remove_row(const std::string& row_name) {
  auto it = std::find_if(rows_.begin(), rows_.end(),
                         [&](const Row& r) { return r.name == row_name; });
  if (it == rows_.end()) {
    throw expr::ExprError("design '" + name_ + "' has no row named '" +
                          row_name + "'");
  }
  rows_.erase(it);
}

Row* Design::find_row(const std::string& row_name) {
  for (Row& r : rows_) {
    if (r.name == row_name) return &r;
  }
  return nullptr;
}

const Row* Design::find_row(const std::string& row_name) const {
  for (const Row& r : rows_) {
    if (r.name == row_name) return &r;
  }
  return nullptr;
}

void Design::add_function(const std::string& name, expr::Function fn) {
  if (expr::FunctionTable::builtins().contains(name) || is_intermodel(name)) {
    throw expr::ExprError("add_function('" + name +
                          "'): name collides with a builtin or intermodel "
                          "function");
  }
  functions_[name] = std::move(fn);
}

std::vector<std::string> Design::function_names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [nm, fn] : functions_) names.push_back(nm);
  return names;  // std::map iteration order is already sorted
}

PlayResult Design::play(const expr::Scope* env) const {
  // Working copy of the globals.  Names the instantiation environment
  // binds locally are erased from the copy so explicit overrides beat the
  // macro's own defaults, while unset names still fall through the chain
  // ("subcircuits may be defined to inherit global parameters").
  expr::Scope globals = globals_;
  globals.set_parent(env);
  if (env != nullptr) {
    for (const std::string& nm : env->local_names()) globals.erase(nm);
  }

  // Design-global formulas must not call intermodel functions: a macro's
  // inner evaluation could not resolve them against the right design.
  // Row-local parameters are evaluated eagerly below, so they may.
  for (const std::string& nm : globals.local_names()) {
    auto found = globals.lookup(nm);
    if (const auto* f = std::get_if<expr::ExprPtr>(found->binding)) {
      for (const std::string& fn : expr::referenced_functions(**f)) {
        if (is_intermodel(fn)) {
          throw expr::ExprError(
              "design '" + name_ + "': global parameter '" + nm +
              "' calls intermodel function '" + fn +
              "' — intermodel terms are only allowed in row parameters");
        }
      }
    }
  }

  // Results visible to the intermodel functions.  Within a sweep, rows
  // evaluated earlier are already fresh; later rows still show the
  // previous sweep (zero on the first), which the fixed-point iteration
  // then resolves.
  std::map<std::string, Estimate> visible;
  bool intermodel_used = false;

  auto row_estimate = [&](const std::string& row_name,
                          const char* fn) -> const Estimate& {
    intermodel_used = true;
    const Row* target = find_row(row_name);
    if (target == nullptr) {
      throw expr::ExprError(std::string(fn) + "(\"" + row_name +
                            "\"): no such row in design '" + name_ + "'");
    }
    if (!target->enabled) {
      static const Estimate kDisabled{};
      return kDisabled;
    }
    static const Estimate kZero{};
    auto it = visible.find(row_name);
    return it == visible.end() ? kZero : it->second;
  };

  expr::FunctionTable fns = expr::FunctionTable::with_builtins();
  fns.register_function("rowpower", [&](const std::vector<expr::Value>& a) {
    return row_estimate(need_row_name(a, "rowpower"), "rowpower")
        .total_power()
        .si();
  });
  fns.register_function("rowarea", [&](const std::vector<expr::Value>& a) {
    return row_estimate(need_row_name(a, "rowarea"), "rowarea").area.si();
  });
  fns.register_function("rowenergy", [&](const std::vector<expr::Value>& a) {
    return row_estimate(need_row_name(a, "rowenergy"), "rowenergy")
        .energy_per_op.si();
  });
  fns.register_function("rowdelay", [&](const std::vector<expr::Value>& a) {
    return row_estimate(need_row_name(a, "rowdelay"), "rowdelay").delay.si();
  });
  fns.register_function("totalpower", [&](const std::vector<expr::Value>& a) {
    if (!a.empty()) throw expr::ExprError("totalpower: takes no arguments");
    intermodel_used = true;
    double sum = 0;
    for (const auto& [nm, est] : visible) sum += est.total_power().si();
    return sum;
  });
  fns.register_function("totalarea", [&](const std::vector<expr::Value>& a) {
    if (!a.empty()) throw expr::ExprError("totalarea: takes no arguments");
    intermodel_used = true;
    double sum = 0;
    for (const auto& [nm, est] : visible) sum += est.area.si();
    return sum;
  });
  for (const auto& [nm, fn] : functions_) fns.register_function(nm, fn);

  PlayResult out;
  out.design_name = name_;

  // The per-row evaluation scope (row locals over the design globals) is
  // invariant across fixed-point sweeps — copy the params maps once per
  // Play, not once per iteration.
  std::vector<expr::Scope> sources;
  sources.reserve(rows_.size());
  for (const Row& row : rows_) {
    expr::Scope source = row.params;
    source.set_parent(&globals);
    sources.push_back(std::move(source));
  }

  double last_total = std::numeric_limits<double>::quiet_NaN();
  for (int iter = 1; iter <= kMaxIterations; ++iter) {
    out.rows.clear();
    std::vector<Estimate> estimates;
    estimates.reserve(rows_.size());

    for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
      const Row& row = rows_[ri];
      if (!row.enabled) continue;
      // Evaluate the row's local parameters eagerly (they may call the
      // intermodel functions); the flattened literal scope is what the
      // model — or the macro's nested Play — sees.
      expr::Scope locals(&globals);
      expr::Evaluator ev(sources[ri], fns);

      RowResult rr;
      rr.name = row.name;
      rr.model_name = row.model_name();
      for (const std::string& nm : row.params.local_names()) {
        const double v = ev.variable(nm);
        locals.set(nm, v);
        rr.shown_params.emplace_back(nm, v);
      }

      if (row.is_macro()) {
        auto sub = std::make_shared<PlayResult>(row.macro->play(&locals));
        rr.estimate = sub->total;
        rr.sub_result = std::move(sub);
      } else {
        model::ScopeParamReader reader(locals, fns, &row.model->params());
        rr.estimate = row.model->evaluate(reader);
      }
      visible[row.name] = rr.estimate;
      estimates.push_back(rr.estimate);
      out.rows.push_back(std::move(rr));
    }

    out.total = model::combine(estimates);
    out.iterations = iter;

    if (!intermodel_used) break;
    const double total = out.total.total_power().si();
    if (iter > 1) {
      const double tol = 1e-9 * std::max(1.0, std::fabs(total));
      if (std::fabs(total - last_total) <= tol) break;
    }
    last_total = total;
    if (iter == kMaxIterations) {
      throw expr::ExprError(
          "design '" + name_ + "': Play did not converge after " +
          std::to_string(kMaxIterations) +
          " sweeps — check for a diverging intermodel loop (e.g. a DC-DC "
          "converter with efficiency <= 50% feeding itself through "
          "totalpower())");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DesignMacroModel
// ---------------------------------------------------------------------------

namespace {

std::vector<model::ParamSpec> macro_param_specs(const Design& d) {
  std::vector<model::ParamSpec> specs;
  for (const std::string& nm : d.globals().local_names()) {
    model::ParamSpec s;
    s.name = nm;
    s.description = "macro global parameter (see design '" + d.name() + "')";
    s.default_value = std::numeric_limits<double>::quiet_NaN();
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace

DesignMacroModel::DesignMacroModel(std::shared_ptr<const Design> design)
    : Model("macro:" + design->name(), model::Category::kMacro,
            "Hierarchical macro wrapping design '" + design->name() +
                "': evaluating it runs that design's own Play with this "
                "instantiation's parameter overrides, and reports the "
                "combined totals.  " +
                design->description(),
            macro_param_specs(*design)),
      design_(std::move(design)) {}

model::Estimate DesignMacroModel::evaluate(const model::ParamReader& p) const {
  expr::Scope env;
  for (const std::string& nm : design_->globals().local_names()) {
    const double v =
        p.get_or(nm, std::numeric_limits<double>::quiet_NaN());
    if (!std::isnan(v)) env.set(nm, v);
  }
  return design_->play(&env).total;
}

}  // namespace powerplay::sheet
