#include "sheet/batch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "model/param.hpp"
#include "units/units.hpp"

namespace powerplay::sheet {

using expr::SlotId;
using model::Estimate;

namespace {

std::optional<SlotId> search_sorted(
    const std::vector<std::pair<std::string, SlotId>>& v,
    const std::string& name) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  if (it != v.end() && it->first == name) return it->second;
  return std::nullopt;
}

/// PlanParamReader's resolution logic (plan.cpp is the reference),
/// pinned to one lane of the batch state: row reads and chain lookups
/// answer from slot_value_lane, spec validation runs per lane exactly
/// as the scalar path validates per point.
class BatchLaneReader final : public model::ParamReader {
 public:
  BatchLaneReader(expr::BatchExec& exec,
                  const std::vector<EvalPlan::Read>& reads,
                  const std::vector<std::pair<std::string, SlotId>>& chain,
                  std::size_t lane)
      : exec_(&exec), reads_(&reads), chain_(&chain), lane_(lane) {}

  [[nodiscard]] double get(const std::string& name) const override {
    if (const EvalPlan::Read* r = find_read(name)) {
      double value;
      if (r->has_slot) {
        value = exec_->slot_value_lane(r->slot, lane_);
      } else if (r->spec != nullptr) {
        value = r->spec->default_value;
      } else {
        throw expr::ExprError("unbound parameter '" + name + "'");
      }
      if (r->spec != nullptr) r->spec->validate(value);
      return value;
    }
    if (const auto slot = search_sorted(*chain_, name)) {
      return exec_->slot_value_lane(*slot, lane_);
    }
    throw expr::ExprError("unbound parameter '" + name + "'");
  }

  [[nodiscard]] double get_or(const std::string& name,
                              double fallback) const override {
    if (const EvalPlan::Read* r = find_read(name)) {
      double value;
      if (r->has_slot) {
        value = exec_->slot_value_lane(r->slot, lane_);
      } else if (r->spec != nullptr && !std::isnan(r->spec->default_value)) {
        value = r->spec->default_value;
      } else {
        return fallback;
      }
      if (r->spec != nullptr) r->spec->validate(value);
      return value;
    }
    if (const auto slot = search_sorted(*chain_, name)) {
      return exec_->slot_value_lane(*slot, lane_);
    }
    return fallback;
  }

 private:
  [[nodiscard]] const EvalPlan::Read* find_read(
      const std::string& name) const {
    const auto it = std::lower_bound(
        reads_->begin(), reads_->end(), name,
        [](const EvalPlan::Read& r, const std::string& n) {
          return r.name < n;
        });
    if (it != reads_->end() && it->name == name) return &*it;
    return nullptr;
  }

  expr::BatchExec* exec_;
  const std::vector<EvalPlan::Read>* reads_;
  const std::vector<std::pair<std::string, SlotId>>* chain_;
  std::size_t lane_;
};

}  // namespace

BatchPlanInstance::BatchPlanInstance(std::shared_ptr<const EvalPlan> plan)
    : plan_(std::move(plan)), exec_(plan_->module_), scalar_(plan_) {
  accs_.resize(plan_->nodes_.size());
  for (NodeAcc& acc : accs_) {
    acc.dynamic_w.resize(kLaneWidth);
    acc.static_w.resize(kLaneWidth);
    acc.energy_j.resize(kLaneWidth);
    acc.area_m2.resize(kLaneWidth);
    acc.delay_s.resize(kLaneWidth);
  }
}

bool BatchPlanInstance::batchable() const { return plan_->ext_sites_.empty(); }

void BatchPlanInstance::bind_from(const Design& design) {
  // Same slot-source walk as PlanInstance::bind_from, feeding the
  // batch base values; the scalar fallback instance refreshes itself.
  for (SlotId i = 0; i < static_cast<SlotId>(plan_->module_.slots.size());
       ++i) {
    const EvalPlan::SlotSource& src = plan_->slot_sources_[i];
    if (!src.valid) continue;
    const Design* d = &design;
    bool ok = true;
    for (const std::size_t ri : plan_->nodes_[src.node].path) {
      if (ri >= d->rows().size() || !d->rows()[ri].is_macro()) {
        ok = false;
        break;
      }
      d = d->rows()[ri].macro.get();
    }
    if (!ok) continue;
    if (src.row >= 0 && static_cast<std::size_t>(src.row) >= d->rows().size()) {
      continue;
    }
    const expr::Scope& scope =
        src.row < 0 ? d->globals()
                    : d->rows()[static_cast<std::size_t>(src.row)].params;
    const auto found = scope.lookup(src.name);
    if (!found) continue;
    if (const double* literal = std::get_if<double>(found->binding)) {
      exec_.rebind_value(i, *literal);
    }
  }
  scalar_.bind_from(design);
}

void BatchPlanInstance::play_block_scalar(
    const std::vector<SlotId>& slots,
    const std::vector<std::vector<double>>& lane_values, std::size_t width,
    PointColumns& out, std::size_t base) {
  for (std::size_t l = 0; l < width; ++l) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      scalar_.bind(slots[s], lane_values[s][l]);
    }
    const PlayResult r = scalar_.play();
    out.power_w[base + l] = r.total.total_power().si();
    out.energy_j[base + l] = r.total.energy_per_op.si();
    out.area_m2[base + l] = r.total.area.si();
    out.delay_s[base + l] = r.total.delay.si();
    ++stats_.scalar_fallback_points;
  }
}

void BatchPlanInstance::run_node_batch(std::uint32_t node_id,
                                       std::size_t width) {
  const EvalPlan::Node& node = plan_->nodes_[node_id];
  if (!node.poison.empty()) throw expr::ExprError(node.poison);
  exec_.begin_epoch(node.globals_domain);

  NodeAcc& acc = accs_[node_id];
  std::fill_n(acc.dynamic_w.begin(), width, 0.0);
  std::fill_n(acc.static_w.begin(), width, 0.0);
  std::fill_n(acc.energy_j.begin(), width, 0.0);
  std::fill_n(acc.area_m2.begin(), width, 0.0);
  std::fill_n(acc.delay_s.begin(), width, 0.0);

  // No intermodel sites anywhere in the plan, so every settle rank is
  // finite and the scalar fixed-point loop exits after iteration 1:
  // one sheet-ordered pass over the enabled rows is the whole Play.
  for (std::size_t ri = 0; ri < node.rows.size(); ++ri) {
    const EvalPlan::PlanRow& row = node.rows[ri];
    if (!row.enabled) continue;
    exec_.begin_epoch(row.domain);
    // Evaluate the row's shown parameters across the block first, as
    // the scalar path does per point: their errors surface before the
    // model runs, and the memo is warm for the model's reads.
    for (const auto& [nm, slot] : row.param_slots) {
      (void)exec_.slot_lanes(slot);
    }

    if (row.is_macro) {
      run_node_batch(row.sub_node, width);
      const NodeAcc& sub = accs_[row.sub_node];
      for (std::size_t l = 0; l < width; ++l) {
        acc.dynamic_w[l] += sub.dynamic_w[l];
        acc.static_w[l] += sub.static_w[l];
        acc.energy_j[l] += sub.energy_j[l];
        acc.area_m2[l] += sub.area_m2[l];
        acc.delay_s[l] = std::max(acc.delay_s[l], sub.delay_s[l]);
      }
    } else if (!run_row_fast(row, node, width, acc)) {
      // The model itself is scalar C++ — run it per lane over the
      // batched parameter reads.  Accumulation order matches
      // model::combine: field-wise sums in enabled sheet-row order,
      // delay as a running max, one separate add per field (no fusion
      // opportunity), so every lane reproduces the scalar doubles.
      for (std::size_t l = 0; l < width; ++l) {
        BatchLaneReader reader(exec_, row.reads, node.chain_names, l);
        const Estimate e = row.model->evaluate(reader);
        acc.dynamic_w[l] += e.dynamic_power.si();
        acc.static_w[l] += e.static_power.si();
        acc.energy_j[l] += e.energy_per_op.si();
        acc.area_m2[l] += e.area.si();
        acc.delay_s[l] = std::max(acc.delay_s[l], e.delay.si());
      }
    }
  }
}

// Captured-terms fast path.  For an operating-point-only model whose
// non-vdd/f reads are bitwise lane-invariant across the block, the EQ 1
// breakdown (cap_terms, static_terms, area, delay) is the same in every
// lane: one full evaluate at lane 0 captures it, and the remaining
// lanes replay only the operating-point arithmetic through
// evaluate_terms — the function make_estimate itself runs — so each
// lane's doubles are exactly what a full per-lane evaluate would
// produce.  Error parity: the lane-0 evaluate validates every
// lane-invariant read once for all lanes, the per-lane vdd/f checks
// below mirror the reader's and param()'s NaN/range rules, and every
// has_slot read is forced through slot_lanes (surfacing per-lane
// formula errors), so the fast path throws whenever the scalar path
// would.  Any throw makes play_block degrade the block to the scalar
// path, which re-raises the true scalar error; a spurious fast-path
// throw therefore only costs speed, never correctness.
bool BatchPlanInstance::run_row_fast(const EvalPlan::PlanRow& row,
                                     const EvalPlan::Node& node,
                                     std::size_t width, NodeAcc& acc) {
  if (width <= 1 || !row.model->operating_point_only()) return false;
  const EvalPlan::Read* vdd_read = nullptr;
  const EvalPlan::Read* f_read = nullptr;
  for (const EvalPlan::Read& r : row.reads) {
    if (r.name == model::kParamVdd) {
      vdd_read = &r;
      continue;
    }
    if (r.name == model::kParamFreq) {
      f_read = &r;
      continue;
    }
    if (!r.has_slot) continue;  // spec default: the same double in every lane
    const double* lanes = exec_.slot_lanes(r.slot);
    const auto bits0 = std::bit_cast<std::uint64_t>(lanes[0]);
    for (std::size_t l = 1; l < width; ++l) {
      if (std::bit_cast<std::uint64_t>(lanes[l]) != bits0) return false;
    }
  }
  // Built-in models declare vdd and f, so the plan pre-resolves both
  // with their specs; anything unusual takes the general path.
  if (vdd_read == nullptr || f_read == nullptr || vdd_read->spec == nullptr ||
      f_read->spec == nullptr) {
    return false;
  }
  const double* vdd_lanes =
      vdd_read->has_slot ? exec_.slot_lanes(vdd_read->slot) : nullptr;
  const double* f_lanes =
      f_read->has_slot ? exec_.slot_lanes(f_read->slot) : nullptr;

  BatchLaneReader reader0(exec_, row.reads, node.chain_names, 0);
  const Estimate e0 = row.model->evaluate(reader0);
  const double area = e0.area.si();
  const double delay = e0.delay.si();

  acc.dynamic_w[0] += e0.dynamic_power.si();
  acc.static_w[0] += e0.static_power.si();
  acc.energy_j[0] += e0.energy_per_op.si();
  acc.area_m2[0] += area;
  acc.delay_s[0] = std::max(acc.delay_s[0], delay);

  if (vdd_lanes == nullptr && f_lanes == nullptr) {
    // Uniform operating point too: every lane is the lane-0 evaluate.
    for (std::size_t l = 1; l < width; ++l) {
      acc.dynamic_w[l] += e0.dynamic_power.si();
      acc.static_w[l] += e0.static_power.si();
      acc.energy_j[l] += e0.energy_per_op.si();
      acc.area_m2[l] += area;
      acc.delay_s[l] = std::max(acc.delay_s[l], delay);
    }
    ++stats_.term_capture_rows;
    return true;
  }

  const model::ParamSpec& vdd_spec = *vdd_read->spec;
  const model::ParamSpec& f_spec = *f_read->spec;
  for (std::size_t l = 1; l < width; ++l) {
    const double vdd = vdd_lanes != nullptr ? vdd_lanes[l]
                                            : vdd_spec.default_value;
    const double f = f_lanes != nullptr ? f_lanes[l] : f_spec.default_value;
    // Mirror of BatchLaneReader::get_or + Model::param for this lane's
    // operating point: same NaN and range rules, so throw-vs-not
    // matches the scalar path (the message never surfaces — a throw
    // degrades the block and the scalar replay raises the real error).
    if (std::isnan(vdd) || std::isnan(f)) {
      throw expr::ExprError("batch: unbound operating point");
    }
    vdd_spec.validate(vdd);
    f_spec.validate(f);
    const model::EstimateCore core = model::evaluate_terms(
        e0.cap_terms, e0.static_terms,
        model::OperatingPoint{units::Voltage{vdd}, units::Frequency{f}});
    acc.dynamic_w[l] += core.dynamic_power.si();
    acc.static_w[l] += core.static_power.si();
    acc.energy_j[l] += core.energy_per_op.si();
    acc.area_m2[l] += area;
    acc.delay_s[l] = std::max(acc.delay_s[l], delay);
  }
  ++stats_.term_capture_rows;
  return true;
}

void BatchPlanInstance::play_block(
    const std::vector<SlotId>& slots,
    const std::vector<std::vector<double>>& lane_values, std::size_t width,
    PointColumns& out, std::size_t base) {
  if (width == 0) return;
  stats_.points += width;
  if (!batchable() || width <= 1) {
    // Intermodel fixed-point work (or a degenerate block) stays on the
    // whole-point scalar path: convergence per point, no lane arrays.
    play_block_scalar(slots, lane_values, width, out, base);
    return;
  }
  exec_.reset(width);
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (std::size_t l = 0; l < width; ++l) {
      exec_.bind_lane(slots[s], l, lane_values[s][l]);
    }
  }
  try {
    run_node_batch(0, width);
  } catch (...) {
    // Something in this block throws.  Degrade the whole block to the
    // scalar path: points replay in lane order, so the error that
    // escapes is the one the scalar sweep would raise (and a spurious
    // batch-only failure would be absorbed entirely).
    play_block_scalar(slots, lane_values, width, out, base);
    return;
  }
  ++stats_.blocks;
  const NodeAcc& acc = accs_[0];
  for (std::size_t l = 0; l < width; ++l) {
    out.power_w[base + l] = acc.dynamic_w[l] + acc.static_w[l];
    out.energy_j[base + l] = acc.energy_j[l];
    out.area_m2[base + l] = acc.area_m2[l];
    out.delay_s[base + l] = acc.delay_s[l];
  }
}

// ---------------------------------------------------------------------------
// Columnar rendering
// ---------------------------------------------------------------------------

std::string grid_table(const ColumnarGrid& grid) {
  std::ostringstream os;
  os << grid.x_param << " \\ " << grid.y_param;
  for (double y : grid.ys) os << '\t' << y;
  os << '\n';
  for (std::size_t i = 0; i < grid.xs.size(); ++i) {
    os << grid.xs[i];
    for (std::size_t j = 0; j < grid.ys.size(); ++j) {
      os << '\t'
         << units::format_si(grid.cols.power_w[i * grid.ys.size() + j], "W");
    }
    os << '\n';
  }
  return os.str();
}

std::string grid_csv(const ColumnarGrid& grid) {
  std::ostringstream os;
  os << std::setprecision(9);
  os << grid.x_param << ',' << grid.y_param
     << ",total_power_w,energy_per_op_j\n";
  for (std::size_t i = 0; i < grid.xs.size(); ++i) {
    for (std::size_t j = 0; j < grid.ys.size(); ++j) {
      const std::size_t k = i * grid.ys.size() + j;
      os << grid.xs[i] << ',' << grid.ys[j] << ',' << grid.cols.power_w[k]
         << ',' << grid.cols.energy_j[k] << '\n';
    }
  }
  return os.str();
}

std::string grid_json(const ColumnarGrid& grid) {
  std::ostringstream os;
  os << std::setprecision(17);
  const auto array = [&os](const std::vector<double>& v) {
    os << '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) os << ',';
      os << v[i];
    }
    os << ']';
  };
  os << "{\"x_param\":\"" << grid.x_param << "\",\"y_param\":\""
     << grid.y_param << "\",\"xs\":";
  array(grid.xs);
  os << ",\"ys\":";
  array(grid.ys);
  os << ",\"power_w\":";
  array(grid.cols.power_w);
  os << ",\"energy_j\":";
  array(grid.cols.energy_j);
  os << "}";
  return os.str();
}

}  // namespace powerplay::sheet
