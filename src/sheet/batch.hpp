// batch.hpp — lane-block (point-per-lane) plan evaluation with
// columnar results.
//
// PlanInstance plays one sweep point at a time and materializes a full
// PlayResult per point: per-row RowResults, shown-parameter vectors,
// cap-term lists — deep copies the grid/Monte-Carlo workloads throw
// away after reading four doubles.  BatchPlanInstance evaluates a
// whole *lane block* of points through one pass over the plan's rows:
// slot storage is structure-of-arrays (expr::BatchExec), each row's
// formulas evaluate across the block at once, and per-row estimates
// accumulate into per-lane metric columns — no per-point result
// objects, no Play-cache probe, no locked shared state on the hot
// path.
//
// The batch path only runs plans with no intermodel extension sites:
// those designs settle in exactly one row pass (every settle rank is
// finite and the fixed-point loop exits after iteration 1), so one
// sheet-ordered sweep over the rows per block reproduces the scalar
// evaluation lane for lane.  Plans with intermodel terms — and blocks
// of width <= 1 — take the scalar PlanInstance per point instead
// (`BatchStats::scalar_fallback_points`), keeping the fixed-point
// convergence trajectory per-point exact.  Any error raised during a
// batch pass also degrades the whole block to the scalar path, so the
// error that surfaces (and its message) is exactly the one the scalar
// sweep would raise for the lowest failing point index.
//
// Tolerance contract: within a lane every operation runs in the same
// order on the same doubles as the scalar path, with no cross-lane
// reassociation and no fused multiply-adds introduced (each opcode and
// each accumulator update is a separate load/compute/store), so batch
// results are expected bit-identical to PlanInstance::play — which
// tests/batch_test.cpp asserts differentially.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/batch.hpp"
#include "sheet/plan.hpp"

namespace powerplay::sheet {

/// Columnar point results: column i holds the four result metrics of
/// point i.  This is everything the sweep/explore consumers read off a
/// PlayResult, at 32 bytes per point instead of a full result tree.
struct PointColumns {
  std::vector<double> power_w;   ///< total power (dynamic + static), W
  std::vector<double> energy_j;  ///< energy per operation, J
  std::vector<double> area_m2;   ///< total area, m^2
  std::vector<double> delay_s;   ///< critical-path delay, s

  void resize(std::size_t n) {
    power_w.assign(n, 0.0);
    energy_j.assign(n, 0.0);
    area_m2.assign(n, 0.0);
    delay_s.assign(n, 0.0);
  }
  [[nodiscard]] std::size_t size() const { return power_w.size(); }
};

/// A grid sweep in columnar form: point (i, j) of the xs x ys grid is
/// column i * ys.size() + j (row-major, y fastest — the same point
/// order as GridSweep and the engine's chunked loops).
struct ColumnarGrid {
  std::string x_param;
  std::string y_param;
  std::vector<double> xs;
  std::vector<double> ys;
  PointColumns cols;
};

/// Batch evaluation counters, cumulative per instance.
struct BatchStats {
  std::uint64_t points = 0;  ///< points evaluated (batch + fallback)
  std::uint64_t blocks = 0;  ///< lane blocks executed on the batch path
  /// Points that took the whole-point scalar PlanInstance path
  /// (intermodel plans, width <= 1, or a block degraded by an error).
  std::uint64_t scalar_fallback_points = 0;
  /// Programs replayed lane-by-lane inside the batch interpreter
  /// (divergent conditionals, would-throw conditions).
  std::uint64_t lane_replays = 0;
  /// Row-blocks served by the captured-terms fast path: one full model
  /// evaluate per block, per-lane replay of the EQ 1 operating-point
  /// arithmetic only (operating-point-only models with lane-invariant
  /// structural parameters).
  std::uint64_t term_capture_rows = 0;
};

/// Per-thread batch evaluation scratch over a shared EvalPlan: the SoA
/// slot lanes, per-node accumulator arrays (arena-allocated once and
/// reused across blocks), and a scalar PlanInstance for the fallback
/// paths.  Not copyable, like PlanInstance.
class BatchPlanInstance {
 public:
  /// Lane-block width: points per batch.  64 lanes keep the whole SoA
  /// working set of a typical design in L1/L2 while giving the lane
  /// loops enough trip count to vectorize.
  static constexpr std::size_t kLaneWidth = 64;

  explicit BatchPlanInstance(std::shared_ptr<const EvalPlan> plan);

  BatchPlanInstance(const BatchPlanInstance&) = delete;
  BatchPlanInstance& operator=(const BatchPlanInstance&) = delete;

  /// Refresh every value slot from a structurally identical design
  /// (both the batch base values and the scalar fallback instance).
  void bind_from(const Design& design);

  /// True when the plan can run on the batch path at all (no
  /// intermodel extension sites).  Intermodel plans still evaluate
  /// correctly through play_block — every point falls back to the
  /// scalar fixed-point path.
  [[nodiscard]] bool batchable() const;

  /// Evaluate `width` points (width <= kLaneWidth): point l binds
  /// slots[s] = lane_values[s][l] for every s.  Results land in
  /// columns [base, base + width) of `out`, which must be resized by
  /// the caller.  Throws exactly what a scalar sweep over the same
  /// points would throw (lowest failing point first).
  void play_block(const std::vector<expr::SlotId>& slots,
                  const std::vector<std::vector<double>>& lane_values,
                  std::size_t width, PointColumns& out, std::size_t base);

  /// Cumulative counters (lane_replays read live off the interpreter).
  [[nodiscard]] BatchStats stats() const {
    BatchStats s = stats_;
    s.lane_replays = exec_.lane_replays();
    return s;
  }
  [[nodiscard]] const EvalPlan& plan() const { return *plan_; }

 private:
  /// Per-node, per-lane metric accumulators — the batched counterpart
  /// of model::combine over the node's enabled rows in sheet order
  /// (field-wise sums, delay max).
  struct NodeAcc {
    std::vector<double> dynamic_w;
    std::vector<double> static_w;
    std::vector<double> energy_j;
    std::vector<double> area_m2;
    std::vector<double> delay_s;
  };

  void run_node_batch(std::uint32_t node_id, std::size_t width);
  /// Captured-terms fast path for one primitive row (see batch.cpp).
  /// Returns false when the row must run the general per-lane evaluate.
  bool run_row_fast(const EvalPlan::PlanRow& row, const EvalPlan::Node& node,
                    std::size_t width, NodeAcc& acc);
  void play_block_scalar(const std::vector<expr::SlotId>& slots,
                         const std::vector<std::vector<double>>& lane_values,
                         std::size_t width, PointColumns& out,
                         std::size_t base);

  std::shared_ptr<const EvalPlan> plan_;
  expr::BatchExec exec_;
  std::vector<NodeAcc> accs_;  ///< parallel to plan nodes
  PlanInstance scalar_;        ///< whole-point fallback path
  BatchStats stats_;
};

/// Render a columnar grid exactly like the PlayResult-based
/// grid_table/grid_csv in sweep.hpp: given bit-identical point values
/// the emitted bytes are identical.
std::string grid_table(const ColumnarGrid& grid);
std::string grid_csv(const ColumnarGrid& grid);

/// Machine-readable columnar payload for the job API: axes plus the
/// power/energy columns as JSON arrays, streamed straight from the
/// column storage.
std::string grid_json(const ColumnarGrid& grid);

}  // namespace powerplay::sheet
