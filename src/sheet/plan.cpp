#include "sheet/plan.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "model/param.hpp"

namespace powerplay::sheet {

using expr::SlotId;
using model::Estimate;

namespace {

bool is_intermodel(const std::string& fn) {
  return fn == "rowpower" || fn == "rowarea" || fn == "rowenergy" ||
         fn == "rowdelay" || fn == "totalpower" || fn == "totalarea";
}

std::optional<SlotId> search_sorted(
    const std::vector<std::pair<std::string, SlotId>>& v,
    const std::string& name) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  if (it != v.end() && it->first == name) return it->second;
  return std::nullopt;
}

/// ScopeParamReader's exact resolution logic over plan slots: row locals
/// first, then the node's scope chain, then the spec default, validated
/// against the spec on every read (param.cpp is the reference).  The
/// row's pre-resolved read table answers declared and locally-bound
/// names with one binary search; anything else can only live on the
/// chain (a spec-less global an expression model reads ad hoc).
class PlanParamReader final : public model::ParamReader {
 public:
  PlanParamReader(expr::ExecState& state,
                  const std::vector<EvalPlan::Read>& reads,
                  const std::vector<std::pair<std::string, SlotId>>& chain)
      : state_(&state), reads_(&reads), chain_(&chain) {}

  [[nodiscard]] double get(const std::string& name) const override {
    if (const EvalPlan::Read* r = find_read(name)) {
      double value;
      if (r->has_slot) {
        value = state_->slot_value(r->slot);
      } else if (r->spec != nullptr) {
        value = r->spec->default_value;
      } else {
        throw expr::ExprError("unbound parameter '" + name + "'");
      }
      if (r->spec != nullptr) r->spec->validate(value);
      return value;
    }
    if (const auto slot = search_sorted(*chain_, name)) {
      return state_->slot_value(*slot);
    }
    throw expr::ExprError("unbound parameter '" + name + "'");
  }

  [[nodiscard]] double get_or(const std::string& name,
                              double fallback) const override {
    if (const EvalPlan::Read* r = find_read(name)) {
      double value;
      if (r->has_slot) {
        value = state_->slot_value(r->slot);
      } else if (r->spec != nullptr && !std::isnan(r->spec->default_value)) {
        // A NaN default marks "no default" (macro parameters): fall back.
        value = r->spec->default_value;
      } else {
        return fallback;
      }
      if (r->spec != nullptr) r->spec->validate(value);
      return value;
    }
    if (const auto slot = search_sorted(*chain_, name)) {
      return state_->slot_value(*slot);
    }
    return fallback;
  }

 private:
  [[nodiscard]] const EvalPlan::Read* find_read(
      const std::string& name) const {
    const auto it = std::lower_bound(
        reads_->begin(), reads_->end(), name,
        [](const EvalPlan::Read& r, const std::string& n) {
          return r.name < n;
        });
    if (it != reads_->end() && it->name == name) return &*it;
    return nullptr;
  }

  expr::ExecState* state_;
  const std::vector<EvalPlan::Read>* reads_;
  const std::vector<std::pair<std::string, SlotId>>* chain_;
};

}  // namespace

// ---------------------------------------------------------------------------
// PlanBuilder
// ---------------------------------------------------------------------------

/// Transient compile state: the only place that may hold pointers into
/// the source design.  Everything the finished plan needs is copied into
/// EvalPlan before compile() returns.
struct PlanBuilder {
  using ExtSite = EvalPlan::ExtSite;
  using Kind = EvalPlan::ExtSite::Kind;
  using Node = EvalPlan::Node;
  using PlanRow = EvalPlan::PlanRow;

  explicit PlanBuilder(EvalPlan& p) : plan(p) {}

  EvalPlan& plan;

  struct BNode {
    const Design* design = nullptr;
    std::int32_t parent_node = -1;
    std::int32_t parent_row = -1;
    std::vector<std::string> surviving;  ///< globals after env erasure, sorted
  };
  std::vector<BNode> bnodes;  ///< parallel to plan.nodes_

  /// Compilation context: which scope a formula resolves names in.
  /// row == -1 means the node's globals scope.
  struct Ctx {
    std::uint32_t node = 0;
    std::int32_t row = -1;
  };

  /// Static intermodel dependencies of one row (targets of its param
  /// formulas' ext sites), for the settle-rank analysis.
  struct Dep {
    std::set<std::uint32_t> rows;
    bool all = false;  ///< totalpower/totalarea: reads every enabled row
  };
  std::vector<std::vector<Dep>> deps;  ///< [node][row]

  std::map<std::tuple<std::uint32_t, std::int32_t, std::string>, SlotId>
      slot_ids;
  std::map<std::tuple<std::uint32_t, std::int32_t, std::string>, SlotId>
      unbound_ids;
  std::map<std::pair<std::int64_t, std::string>, std::uint32_t> fn_ids;

  struct Job {
    expr::ExprPtr formula;
    Ctx ctx;
    std::uint32_t program = 0;
  };
  std::vector<Job> jobs;

  std::uint32_t next_domain = 0;

  std::uint32_t add_node(const Design& d, std::int32_t parent_node,
                         std::int32_t parent_row, std::vector<std::size_t> path,
                         int depth) {
    if (depth > 64) {
      // The interpreter would blow the stack on a self-containing macro;
      // failing the compile with a message is strictly kinder.
      throw expr::ExprError("design '" + d.name() +
                            "': macro nesting deeper than 64 levels "
                            "(recursive macro?)");
    }
    const auto id = static_cast<std::uint32_t>(plan.nodes_.size());
    plan.nodes_.emplace_back();
    bnodes.emplace_back();
    deps.emplace_back();
    plan.nodes_[id].design_name = d.name();
    plan.nodes_[id].path = std::move(path);
    plan.nodes_[id].globals_domain = next_domain++;
    bnodes[id].design = &d;
    bnodes[id].parent_node = parent_node;
    bnodes[id].parent_row = parent_row;

    // Names the instantiating row binds locally are erased from the
    // macro's globals (explicit overrides beat the macro's defaults).
    std::vector<std::string> surviving;
    if (parent_node >= 0) {
      const Row& inst =
          bnodes[parent_node].design->rows()[static_cast<std::size_t>(
              parent_row)];
      for (const std::string& nm : d.globals().local_names()) {
        if (!inst.params.has_local(nm)) surviving.push_back(nm);
      }
    } else {
      surviving = d.globals().local_names();
    }
    bnodes[id].surviving = std::move(surviving);

    // Same eager check as Design::play, same message, same first-hit
    // order (sorted names, formula's reference order) — thrown when the
    // node plays, which matches the interpreter's timing exactly.
    for (const std::string& nm : bnodes[id].surviving) {
      const auto found = bnodes[id].design->globals().lookup(nm);
      if (const auto* f = std::get_if<expr::ExprPtr>(found->binding)) {
        for (const std::string& fn : expr::referenced_functions(**f)) {
          if (is_intermodel(fn)) {
            plan.nodes_[id].poison =
                "design '" + d.name() + "': global parameter '" + nm +
                "' calls intermodel function '" + fn +
                "' — intermodel terms are only allowed in row parameters";
            break;
          }
        }
      }
      if (!plan.nodes_[id].poison.empty()) break;
    }

    deps[id].resize(d.rows().size());
    for (std::size_t ri = 0; ri < d.rows().size(); ++ri) {
      const Row& row = d.rows()[ri];
      PlanRow pr;
      pr.name = row.name;
      pr.model_name = row.model_name();
      pr.enabled = row.enabled;
      pr.is_macro = row.is_macro();
      pr.model = row.model;
      pr.domain = next_domain++;
      plan.nodes_[id].rows.push_back(std::move(pr));
      if (row.is_macro()) {
        std::vector<std::size_t> sub_path = plan.nodes_[id].path;
        sub_path.push_back(ri);
        const std::uint32_t sub =
            add_node(*row.macro, static_cast<std::int32_t>(id),
                     static_cast<std::int32_t>(ri), std::move(sub_path),
                     depth + 1);
        plan.nodes_[id].rows[ri].sub_node = sub;
      }
    }

    // Enabled rows in name order: the iteration order of the
    // interpreter's `visible` std::map (row names are unique), which the
    // totalpower/totalarea float summation must reproduce.
    std::vector<std::uint32_t> order;
    for (std::uint32_t ri = 0;
         ri < static_cast<std::uint32_t>(plan.nodes_[id].rows.size()); ++ri) {
      if (plan.nodes_[id].rows[ri].enabled) order.push_back(ri);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return plan.nodes_[id].rows[a].name <
                       plan.nodes_[id].rows[b].name;
              });
    plan.nodes_[id].name_sorted_enabled = std::move(order);
    return id;
  }

  SlotId make_slot(const std::string& name, const expr::Scope::Binding& binding,
                   Ctx owner, std::uint32_t domain) {
    const auto id = static_cast<SlotId>(plan.module_.slots.size());
    expr::SlotInfo info;
    info.name = name;
    EvalPlan::SlotSource src;
    src.node = owner.node;
    src.row = owner.row;
    src.name = name;
    if (const double* literal = std::get_if<double>(&binding)) {
      info.kind = expr::SlotKind::kValue;
      info.initial = *literal;
      src.valid = true;
    } else {
      info.kind = expr::SlotKind::kFormula;
      info.domain = domain;
      info.program = static_cast<std::uint32_t>(plan.module_.programs.size());
      plan.module_.programs.emplace_back();  // reserved, filled by run_jobs
      jobs.push_back(Job{std::get<expr::ExprPtr>(binding), owner, info.program});
    }
    plan.module_.slots.push_back(std::move(info));
    plan.slot_sources_.push_back(std::move(src));
    return id;
  }

  SlotId global_slot(std::uint32_t node, const std::string& name) {
    const auto key = std::make_tuple(node, std::int32_t{-1}, name);
    if (const auto it = slot_ids.find(key); it != slot_ids.end()) {
      return it->second;
    }
    const auto found = bnodes[node].design->globals().lookup(name);
    const SlotId id = make_slot(name, *found->binding, Ctx{node, -1},
                                plan.nodes_[node].globals_domain);
    slot_ids.emplace(key, id);
    return id;
  }

  SlotId row_param_slot(std::uint32_t node, std::uint32_t row,
                        const std::string& name) {
    const auto key =
        std::make_tuple(node, static_cast<std::int32_t>(row), name);
    if (const auto it = slot_ids.find(key); it != slot_ids.end()) {
      return it->second;
    }
    const auto found =
        bnodes[node].design->rows()[row].params.lookup(name);
    const SlotId id =
        make_slot(name, *found->binding, Ctx{node, static_cast<std::int32_t>(row)},
                  plan.nodes_[node].rows[row].domain);
    slot_ids.emplace(key, id);
    return id;
  }

  [[nodiscard]] bool has_surviving(std::uint32_t node,
                                   const std::string& name) const {
    const auto& v = bnodes[node].surviving;
    return std::binary_search(v.begin(), v.end(), name);
  }

  /// Static name resolution, mirroring the interpreter's chain at play
  /// time: row locals, this node's surviving globals, then per enclosing
  /// level the instantiating row's (eagerly evaluated) params and that
  /// design's surviving globals.
  SlotId resolve(Ctx ctx, const std::string& name) {
    if (ctx.row >= 0) {
      const Row& r =
          bnodes[ctx.node].design->rows()[static_cast<std::size_t>(ctx.row)];
      if (r.params.has_local(name)) {
        return row_param_slot(ctx.node, static_cast<std::uint32_t>(ctx.row),
                              name);
      }
    }
    std::int32_t n = static_cast<std::int32_t>(ctx.node);
    while (n >= 0) {
      if (has_surviving(static_cast<std::uint32_t>(n), name)) {
        return global_slot(static_cast<std::uint32_t>(n), name);
      }
      const BNode& bn = bnodes[static_cast<std::size_t>(n)];
      if (bn.parent_node < 0) break;
      const Row& inst = bnodes[bn.parent_node]
                            .design->rows()[static_cast<std::size_t>(
                                bn.parent_row)];
      if (inst.params.has_local(name)) {
        return row_param_slot(static_cast<std::uint32_t>(bn.parent_node),
                              static_cast<std::uint32_t>(bn.parent_row), name);
      }
      n = bn.parent_node;
    }
    // Unbound: one lazily-throwing slot per (context, name), like the
    // tree walk keying unresolved names on the lookup context.
    const auto key = std::make_tuple(ctx.node, ctx.row, name);
    if (const auto it = unbound_ids.find(key); it != unbound_ids.end()) {
      return it->second;
    }
    const auto id = static_cast<SlotId>(plan.module_.slots.size());
    expr::SlotInfo info;
    info.name = name;
    info.kind = expr::SlotKind::kUnbound;
    plan.module_.slots.push_back(std::move(info));
    plan.slot_sources_.emplace_back();
    unbound_ids.emplace(key, id);
    return id;
  }

  std::optional<std::uint32_t> function_index(std::uint32_t node,
                                              const std::string& name) {
    // Builtins and design-local functions share one namespace with no
    // collisions (add_function enforces it), so lookup order is free.
    if (const expr::Function* fn = bnodes[node].design->find_function(name)) {
      const auto key = std::make_pair(static_cast<std::int64_t>(node), name);
      if (const auto it = fn_ids.find(key); it != fn_ids.end()) {
        return it->second;
      }
      const auto index =
          static_cast<std::uint32_t>(plan.module_.functions.size());
      plan.module_.functions.push_back(*fn);
      fn_ids.emplace(key, index);
      return index;
    }
    if (const expr::Function* fn = expr::FunctionTable::builtins().find(name)) {
      const auto key = std::make_pair(std::int64_t{-1}, name);
      if (const auto it = fn_ids.find(key); it != fn_ids.end()) {
        return it->second;
      }
      const auto index =
          static_cast<std::uint32_t>(plan.module_.functions.size());
      plan.module_.functions.push_back(*fn);
      fn_ids.emplace(key, index);
      return index;
    }
    return std::nullopt;
  }

  std::uint32_t add_site(ExtSite site) {
    const auto index = static_cast<std::uint32_t>(plan.ext_sites_.size());
    plan.ext_sites_.push_back(site);
    return index;
  }

  /// Lower an intermodel call.  Returns false for ordinary functions.
  /// The error paths reproduce design.cpp's runtime lambdas: argument
  /// expressions evaluate before the arity check throws, a missing row
  /// throws its message (the interpreter's flag-set-then-throw is
  /// unobservable because the exception aborts the Play), a disabled row
  /// is a flag-setting zero, totalpower/totalarea check arity before
  /// touching the flag.
  bool special_call(Ctx ctx, const expr::CallNode& c, expr::Compiler& comp) {
    if (!is_intermodel(c.name)) return false;
    const Design& d = *bnodes[ctx.node].design;
    const bool takes_row = c.name != "totalpower" && c.name != "totalarea";
    if (!takes_row) {
      if (!c.args.empty()) {
        for (const expr::ExprPtr& arg : c.args) {
          if (std::get_if<expr::StringNode>(&arg->node) == nullptr) {
            comp.compile(*arg);
          }
        }
        comp.emit_throw(c.name + ": takes no arguments");
        return true;
      }
      ExtSite site;
      site.kind = c.name == "totalpower" ? Kind::kTotalPower : Kind::kTotalArea;
      site.node = ctx.node;
      comp.emit(expr::Op::kExt, add_site(site));
      if (ctx.row >= 0) deps[ctx.node][static_cast<std::size_t>(ctx.row)].all = true;
      return true;
    }
    const expr::StringNode* s =
        c.args.size() == 1 ? std::get_if<expr::StringNode>(&c.args[0]->node)
                           : nullptr;
    if (s == nullptr) {
      for (const expr::ExprPtr& arg : c.args) {
        if (std::get_if<expr::StringNode>(&arg->node) == nullptr) {
          comp.compile(*arg);
        }
      }
      comp.emit_throw(c.name +
                      ": expects a single row-name string argument, e.g. " +
                      c.name + "(\"Read Bank\")");
      return true;
    }
    const Row* target = d.find_row(s->value);
    if (target == nullptr) {
      comp.emit_throw(c.name + "(\"" + s->value +
                      "\"): no such row in design '" + d.name() + "'");
      return true;
    }
    const auto target_row = static_cast<std::uint32_t>(target - d.rows().data());
    ExtSite site;
    site.node = ctx.node;
    site.target_row = target_row;
    if (!target->enabled) {
      site.kind = Kind::kDisabledZero;
    } else if (c.name == "rowpower") {
      site.kind = Kind::kRowPower;
    } else if (c.name == "rowarea") {
      site.kind = Kind::kRowArea;
    } else if (c.name == "rowenergy") {
      site.kind = Kind::kRowEnergy;
    } else {
      site.kind = Kind::kRowDelay;
    }
    comp.emit(expr::Op::kExt, add_site(site));
    if (target->enabled && ctx.row >= 0) {
      deps[ctx.node][static_cast<std::size_t>(ctx.row)].rows.insert(target_row);
    }
    return true;
  }

  void run_jobs() {
    while (!jobs.empty()) {
      const Job job = std::move(jobs.back());
      jobs.pop_back();
      expr::Compiler* active = nullptr;
      expr::Compiler::Hooks hooks;
      hooks.variable = [this, &job](const std::string& name) {
        return resolve(job.ctx, name);
      };
      hooks.function = [this, &job](const std::string& name) {
        return function_index(job.ctx.node, name);
      };
      hooks.special_call = [this, &job, &active](const expr::CallNode& c) {
        return special_call(job.ctx, c, *active);
      };
      expr::Compiler comp(plan.module_, std::move(hooks));
      active = &comp;
      plan.module_.programs[job.program] = comp.build(*job.formula);
    }
  }

  [[nodiscard]] std::vector<std::pair<std::string, SlotId>> build_chain(
      std::uint32_t node) {
    std::map<std::string, SlotId> chain;  // first binding wins
    const auto add_globals = [&](std::uint32_t n) {
      for (const std::string& nm : bnodes[n].surviving) {
        chain.try_emplace(nm, slot_ids.at(std::make_tuple(n, std::int32_t{-1}, nm)));
      }
    };
    std::int32_t cur = static_cast<std::int32_t>(node);
    add_globals(static_cast<std::uint32_t>(cur));
    while (bnodes[static_cast<std::size_t>(cur)].parent_node >= 0) {
      const std::int32_t pn = bnodes[static_cast<std::size_t>(cur)].parent_node;
      const std::int32_t pr = bnodes[static_cast<std::size_t>(cur)].parent_row;
      const Row& inst =
          bnodes[pn].design->rows()[static_cast<std::size_t>(pr)];
      for (const std::string& nm : inst.params.local_names()) {
        chain.try_emplace(nm, slot_ids.at(std::make_tuple(
                                  static_cast<std::uint32_t>(pn), pr, nm)));
      }
      add_globals(static_cast<std::uint32_t>(pn));
      cur = pn;
    }
    return {chain.begin(), chain.end()};
  }

  /// Settle-rank analysis.  A row's value at iteration i is a pure
  /// function of its intermodel inputs: an earlier-indexed dep is read
  /// from the current iteration, a later-or-equal one from the previous
  /// (+1).  Rows on a dependency cycle — or transitively reading one —
  /// re-evaluate every iteration; everything else is bitwise stable from
  /// its rank onward and gets reused.
  void compute_ranks(std::uint32_t node) {
    auto& rows = plan.nodes_[node].rows;
    const std::size_t n = rows.size();
    if (n == 0) return;
    std::vector<std::vector<std::uint8_t>> adj(n,
                                               std::vector<std::uint8_t>(n, 0));
    for (std::size_t r = 0; r < n; ++r) {
      const Dep& dp = deps[node][r];
      if (dp.all) {
        for (std::size_t t = 0; t < n; ++t) {
          if (rows[t].enabled) adj[r][t] = 1;
        }
      }
      for (const std::uint32_t t : dp.rows) adj[r][t] = 1;
    }
    auto reach = adj;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!reach[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          reach[i][j] = static_cast<std::uint8_t>(reach[i][j] | reach[k][j]);
        }
      }
    }
    std::vector<std::uint8_t> iterative(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (reach[i][i]) {
        iterative[i] = 1;
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[i][j] && reach[j][j]) {
          iterative[i] = 1;
          break;
        }
      }
    }
    std::vector<std::uint32_t> rank(n, 0);
    const std::function<std::uint32_t(std::size_t)> compute =
        [&](std::size_t r) -> std::uint32_t {
      if (iterative[r]) return EvalPlan::kIterativeRank;
      if (rank[r] != 0) return rank[r];
      std::uint32_t best = 1;
      for (std::size_t j = 0; j < n; ++j) {
        if (!adj[r][j]) continue;
        // j cannot be iterative here (that would make r iterative too),
        // so the recursion is over a DAG and the +1 cannot overflow.
        best = std::max(best, compute(j) + (j >= r ? 1u : 0u));
      }
      rank[r] = best;
      return best;
    };
    for (std::size_t r = 0; r < n; ++r) rows[r].rank = compute(r);
  }
};

// ---------------------------------------------------------------------------
// EvalPlan
// ---------------------------------------------------------------------------

std::shared_ptr<const EvalPlan> EvalPlan::compile(const Design& design) {
  std::shared_ptr<EvalPlan> plan(new EvalPlan());
  plan->design_name_ = design.name();
  PlanBuilder b(*plan);
  b.add_node(design, -1, -1, {}, 0);
  // Intern every bound global and row parameter eagerly: sweeps re-bind
  // by slot and model reads resolve names with no design in sight.
  for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(plan->nodes_.size());
       ++n) {
    for (const std::string& nm : b.bnodes[n].surviving) b.global_slot(n, nm);
    const Design* d = b.bnodes[n].design;
    for (std::uint32_t ri = 0; ri < static_cast<std::uint32_t>(d->rows().size());
         ++ri) {
      for (const std::string& nm : d->rows()[ri].params.local_names()) {
        b.row_param_slot(n, ri, nm);
      }
    }
  }
  b.run_jobs();
  for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(plan->nodes_.size());
       ++n) {
    Node& node = plan->nodes_[n];
    const Design* d = b.bnodes[n].design;
    for (std::uint32_t ri = 0; ri < static_cast<std::uint32_t>(node.rows.size());
         ++ri) {
      auto& slots = node.rows[ri].param_slots;
      // local_names() is sorted, so the slot vector is too.
      for (const std::string& nm : d->rows()[ri].params.local_names()) {
        slots.emplace_back(
            nm, b.slot_ids.at(std::make_tuple(
                    n, static_cast<std::int32_t>(ri), nm)));
      }
    }
    node.chain_names = b.build_chain(n);
    for (PlanRow& row : node.rows) {
      if (row.is_macro || row.model == nullptr) continue;
      for (const auto& [nm, slot] : row.param_slots) {
        row.reads.push_back(EvalPlan::Read{nm, nullptr, slot, true});
      }
      for (const model::ParamSpec& s : row.model->params()) {
        const auto it = std::find_if(
            row.reads.begin(), row.reads.end(),
            [&](const EvalPlan::Read& r) { return r.name == s.name; });
        if (it != row.reads.end()) {
          it->spec = &s;
          continue;
        }
        EvalPlan::Read rd{s.name, &s, 0, false};
        if (const auto slot = search_sorted(node.chain_names, s.name)) {
          rd.slot = *slot;
          rd.has_slot = true;
        }
        row.reads.push_back(std::move(rd));
      }
      std::sort(row.reads.begin(), row.reads.end(),
                [](const EvalPlan::Read& a, const EvalPlan::Read& b2) {
                  return a.name < b2.name;
                });
    }
    b.compute_ranks(n);
  }
  plan->module_.domain_count = std::max(1u, b.next_domain);
  return plan;
}

std::optional<SlotId> EvalPlan::global_slot(const std::string& name) const {
  // The root chain is exactly the root globals (nothing above erases).
  return search_sorted(nodes_[0].chain_names, name);
}

std::optional<SlotId> EvalPlan::row_param_slot(const std::string& row,
                                               const std::string& param) const {
  for (const PlanRow& r : nodes_[0].rows) {
    if (r.name == row) return search_sorted(r.param_slots, param);
  }
  return std::nullopt;
}

std::uint32_t EvalPlan::row_rank(const std::string& row) const {
  for (const PlanRow& r : nodes_[0].rows) {
    if (r.name == row) return r.rank;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// PlanInstance
// ---------------------------------------------------------------------------

PlanInstance::PlanInstance(std::shared_ptr<const EvalPlan> plan)
    : plan_(std::move(plan)), state_(plan_->module_) {
  state_.set_ext(&PlanInstance::ext_thunk, this);
  frames_.resize(plan_->nodes_.size());
  for (std::size_t n = 0; n < frames_.size(); ++n) {
    const std::size_t rows = plan_->nodes_[n].rows.size();
    frames_[n].estimates.resize(rows);
    frames_[n].present.assign(rows, 0);
    frames_[n].cached.resize(rows);
    frames_[n].has_cached.assign(rows, 0);
  }
}

void PlanInstance::bind(SlotId slot, double value) { state_.bind(slot, value); }

void PlanInstance::bind_from(const Design& design) {
  for (SlotId i = 0; i < static_cast<SlotId>(plan_->module_.slots.size());
       ++i) {
    const EvalPlan::SlotSource& src = plan_->slot_sources_[i];
    if (!src.valid) continue;
    const Design* d = &design;
    bool ok = true;
    for (const std::size_t ri : plan_->nodes_[src.node].path) {
      if (ri >= d->rows().size() || !d->rows()[ri].is_macro()) {
        ok = false;
        break;
      }
      d = d->rows()[ri].macro.get();
    }
    if (!ok) continue;
    if (src.row >= 0 && static_cast<std::size_t>(src.row) >= d->rows().size()) {
      continue;
    }
    const expr::Scope& scope =
        src.row < 0 ? d->globals()
                    : d->rows()[static_cast<std::size_t>(src.row)].params;
    const auto found = scope.lookup(src.name);
    if (!found) continue;
    if (const double* literal = std::get_if<double>(found->binding)) {
      state_.rebind_value(i, *literal);
    }
  }
}

double PlanInstance::ext_thunk(void* ctx, std::uint32_t site, std::uint32_t) {
  return static_cast<PlanInstance*>(ctx)->ext(site);
}

double PlanInstance::ext(std::uint32_t site_index) {
  const EvalPlan::ExtSite& site = plan_->ext_sites_[site_index];
  const EvalPlan::Node& node = plan_->nodes_[site.node];
  NodeFrame& frame = frames_[site.node];
  frame.intermodel_used = true;
  static const Estimate kZero{};
  using Kind = EvalPlan::ExtSite::Kind;
  switch (site.kind) {
    case Kind::kDisabledZero:
      return 0.0;
    case Kind::kRowPower:
      return (frame.present[site.target_row] ? frame.estimates[site.target_row]
                                             : kZero)
          .total_power()
          .si();
    case Kind::kRowArea:
      return (frame.present[site.target_row] ? frame.estimates[site.target_row]
                                             : kZero)
          .area.si();
    case Kind::kRowEnergy:
      return (frame.present[site.target_row] ? frame.estimates[site.target_row]
                                             : kZero)
          .energy_per_op.si();
    case Kind::kRowDelay:
      return (frame.present[site.target_row] ? frame.estimates[site.target_row]
                                             : kZero)
          .delay.si();
    case Kind::kTotalPower: {
      double sum = 0;
      for (const std::uint32_t ri : node.name_sorted_enabled) {
        if (frame.present[ri]) sum += frame.estimates[ri].total_power().si();
      }
      return sum;
    }
    case Kind::kTotalArea: {
      double sum = 0;
      for (const std::uint32_t ri : node.name_sorted_enabled) {
        if (frame.present[ri]) sum += frame.estimates[ri].area.si();
      }
      return sum;
    }
  }
  return 0.0;  // unreachable
}

PlayResult PlanInstance::run_node(std::uint32_t node_id) {
  const EvalPlan::Node& node = plan_->nodes_[node_id];
  if (!node.poison.empty()) throw expr::ExprError(node.poison);

  NodeFrame& frame = frames_[node_id];
  frame.intermodel_used = false;
  std::fill(frame.present.begin(), frame.present.end(), 0);
  std::fill(frame.has_cached.begin(), frame.has_cached.end(), 0);
  state_.begin_epoch(node.globals_domain);

  PlayResult out;
  out.design_name = node.design_name;

  std::vector<Estimate> estimates;
  estimates.reserve(node.rows.size());

  double last_total = std::numeric_limits<double>::quiet_NaN();
  for (int iter = 1; iter <= Design::kMaxIterations; ++iter) {
    estimates.clear();
    for (std::size_t ri = 0; ri < node.rows.size(); ++ri) {
      const EvalPlan::PlanRow& row = node.rows[ri];
      if (!row.enabled) continue;
      if (frame.has_cached[ri] && static_cast<std::uint32_t>(iter) > row.rank) {
        // Settled: every input the row reads is bitwise what it was last
        // iteration, so the cached evaluation is exact.
        estimates.push_back(frame.estimates[ri]);
        continue;
      }
      ++stats_.row_evaluations;
      state_.begin_epoch(row.domain);

      RowResult rr;
      rr.name = row.name;
      rr.model_name = row.model_name;
      rr.shown_params.reserve(row.param_slots.size());
      for (const auto& [nm, slot] : row.param_slots) {
        rr.shown_params.emplace_back(nm, state_.slot_value(slot));
      }

      if (row.is_macro) {
        auto sub = std::make_shared<PlayResult>(run_node(row.sub_node));
        rr.estimate = sub->total;
        rr.sub_result = std::move(sub);
      } else {
        PlanParamReader reader(state_, row.reads, node.chain_names);
        rr.estimate = row.model->evaluate(reader);
      }
      frame.estimates[ri] = rr.estimate;
      frame.present[ri] = 1;
      estimates.push_back(rr.estimate);
      frame.cached[ri] = std::move(rr);
      frame.has_cached[ri] = 1;
    }

    out.total = model::combine(estimates);
    out.iterations = iter;

    if (!frame.intermodel_used) break;
    const double total = out.total.total_power().si();
    if (iter > 1) {
      const double tol = 1e-9 * std::max(1.0, std::fabs(total));
      if (std::fabs(total - last_total) <= tol) break;
    }
    last_total = total;
    if (iter == Design::kMaxIterations) {
      throw expr::ExprError(
          "design '" + node.design_name + "': Play did not converge after " +
          std::to_string(Design::kMaxIterations) +
          " sweeps — check for a diverging intermodel loop (e.g. a DC-DC "
          "converter with efficiency <= 50% feeding itself through "
          "totalpower())");
    }
  }

  out.rows.reserve(node.name_sorted_enabled.size());
  for (std::size_t ri = 0; ri < node.rows.size(); ++ri) {
    // Moving is safe: has_cached resets at the top of every run_node and
    // iteration 1 always rebuilds before anything reads the slot again.
    if (node.rows[ri].enabled) out.rows.push_back(std::move(frame.cached[ri]));
  }
  return out;
}

PlayResult PlanInstance::play() {
  stats_ = PlanStats{};
  PlayResult out = run_node(0);
  stats_.iterations = out.iterations;
  return out;
}

}  // namespace powerplay::sheet
