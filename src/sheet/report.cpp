#include "sheet/report.hpp"

#include <iomanip>
#include <sstream>

namespace powerplay::sheet {

namespace {

using units::format_area;
using units::format_si;

std::string params_text(const RowResult& row) {
  std::string out;
  for (const auto& [name, value] : row.shown_params) {
    if (!out.empty()) out += ", ";
    std::ostringstream v;
    v << std::setprecision(6) << value;
    out += name + "=" + v.str();
  }
  return out;
}

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::string render(int indent) const {
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
    for (const auto& r : rows) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    const std::string pad(indent * 2, ' ');
    std::ostringstream os;
    auto line = [&](const std::vector<std::string>& cells, char fill) {
      os << pad << "|";
      for (std::size_t c = 0; c < header.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        os << ' ' << cell << std::string(width[c] - cell.size(), fill)
           << " |";
      }
      os << '\n';
    };
    line(header, ' ');
    std::vector<std::string> rule(header.size());
    os << pad << "|";
    for (std::size_t c = 0; c < header.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "|";
    }
    os << '\n';
    for (const auto& r : rows) line(r, ' ');
    return os.str();
  }
};

void append_result(const PlayResult& result, const ReportOptions& opt,
                   std::string& out) {
  const std::string pad(opt.indent * 2, ' ');
  out += pad + result.design_name + " summary\n";

  Table t;
  t.header = {"Row", "Model"};
  if (opt.show_params) t.header.push_back("Parameters");
  t.header.push_back("Rate");
  if (opt.show_capacitance) t.header.push_back("Csw/op");
  if (opt.show_energy) t.header.push_back("Energy/op");
  if (opt.show_area) t.header.push_back("Area");
  if (opt.show_delay) t.header.push_back("Delay");
  t.header.push_back("Power");

  auto add_line = [&](const std::string& name, const std::string& model_name,
                      const std::string& params, const model::Estimate& e,
                      double rate_hz) {
    std::vector<std::string> cells = {name, model_name};
    if (opt.show_params) cells.push_back(params);
    cells.push_back(rate_hz > 0 ? format_si(rate_hz, "Hz") : "-");
    if (opt.show_capacitance) {
      cells.push_back(e.switched_capacitance.si() > 0
                          ? format_si(e.switched_capacitance.si(), "F")
                          : "-");
    }
    if (opt.show_energy) {
      cells.push_back(e.energy_per_op.si() > 0
                          ? format_si(e.energy_per_op.si(), "J")
                          : "-");
    }
    if (opt.show_area) {
      cells.push_back(e.area.si() > 0 ? format_area(e.area.si()) : "-");
    }
    if (opt.show_delay) {
      cells.push_back(e.delay.si() > 0 ? format_si(e.delay.si(), "s") : "-");
    }
    cells.push_back(format_si(e.total_power().si(), "W"));
    t.rows.push_back(std::move(cells));
  };

  for (const RowResult& row : result.rows) {
    double rate = 0;
    for (const auto& [name, value] : row.shown_params) {
      if (name == "f") rate = value;
    }
    add_line(row.name, row.model_name, params_text(row), row.estimate, rate);
  }
  add_line("TOTAL", "", "", result.total, 0);
  out += t.render(opt.indent);

  if (opt.recurse_macros) {
    for (const RowResult& row : result.rows) {
      if (row.sub_result != nullptr) {
        ReportOptions sub = opt;
        sub.indent = opt.indent + 1;
        out += '\n';
        append_result(*row.sub_result, sub, out);
      }
    }
  }
}

}  // namespace

std::string to_table(const PlayResult& result, const ReportOptions& opt) {
  std::string out;
  append_result(result, opt, out);
  return out;
}

std::string to_csv(const PlayResult& result) {
  std::ostringstream os;
  os << "row,model,power_w,energy_per_op_j,csw_f,area_m2,params\n";
  os << std::setprecision(9);
  auto emit = [&](const std::string& name, const std::string& model_name,
                  const model::Estimate& e, const std::string& params) {
    os << '"' << name << "\"," << '"' << model_name << "\","
       << e.total_power().si() << ',' << e.energy_per_op.si() << ','
       << e.switched_capacitance.si() << ',' << e.area.si() << ",\""
       << params << "\"\n";
  };
  for (const RowResult& row : result.rows) {
    emit(row.name, row.model_name, row.estimate, params_text(row));
  }
  emit("TOTAL", "", result.total, "");
  return os.str();
}

std::string to_breakdown(const RowResult& row) {
  std::ostringstream os;
  os << row.name << " (" << row.model_name << ")\n";
  if (!row.shown_params.empty()) {
    os << "  parameters: " << params_text(row) << '\n';
  }
  for (const model::CapTerm& t : row.estimate.cap_terms) {
    os << "  C[" << t.label << "] = " << format_si(t.c_sw.si(), "F");
    if (!t.full_swing) {
      os << " @ swing " << format_si(t.v_swing.si(), "V");
    }
    os << '\n';
  }
  for (const model::StaticTerm& t : row.estimate.static_terms) {
    os << "  I[" << t.label << "] = " << format_si(t.current.si(), "A")
       << '\n';
  }
  os << "  energy/op = " << format_si(row.estimate.energy_per_op.si(), "J")
     << ", dynamic = " << format_si(row.estimate.dynamic_power.si(), "W")
     << ", static = " << format_si(row.estimate.static_power.si(), "W")
     << ", total = " << format_si(row.estimate.total_power().si(), "W")
     << '\n';
  return os.str();
}

TimingSummary timing_summary(const PlayResult& result) {
  TimingSummary out;
  std::map<int, TimingSummary::Stage> stages;
  for (const RowResult& row : result.rows) {
    int stage = 0;
    for (const auto& [name, value] : row.shown_params) {
      if (name == "stage") stage = static_cast<int>(value);
    }
    auto& s = stages[stage];
    s.stage = stage;
    if (row.estimate.delay > s.delay) {
      s.delay = row.estimate.delay;
      s.critical_row = row.name;
    }
  }
  for (auto& [num, stage] : stages) {
    if (stage.delay > out.critical_path) {
      out.critical_path = stage.delay;
      out.critical_row = stage.critical_row;
    }
    out.stages.push_back(stage);
  }
  if (out.critical_path.si() > 0) {
    out.max_clock = units::Frequency{1.0 / out.critical_path.si()};
  }
  return out;
}

std::string timing_table(const TimingSummary& summary) {
  std::ostringstream os;
  os << "timing summary (first-cut pipeline composition)\n";
  for (const auto& stage : summary.stages) {
    os << "  stage " << stage.stage << ": "
       << format_si(stage.delay.si(), "s") << "  (critical: "
       << (stage.critical_row.empty() ? "-" : stage.critical_row) << ")\n";
  }
  os << "  critical path " << format_si(summary.critical_path.si(), "s")
     << " through '" << summary.critical_row << "' -> max clock "
     << format_si(summary.max_clock.si(), "Hz") << "\n";
  return os.str();
}

std::string summary_line(const PlayResult& result) {
  std::ostringstream os;
  os << result.design_name << ": "
     << format_si(result.total.total_power().si(), "W") << " ("
     << result.rows.size() << " rows, " << result.iterations << " sweep"
     << (result.iterations == 1 ? "" : "s") << ")";
  return os.str();
}

}  // namespace powerplay::sheet
