// standard_flows.hpp — a ready-made Design Agent configuration.
//
// The refinement story the paper tells for memories: a quick EQ 7
// organization estimate at sketch time, the EQ 8 reduced-swing
// refinement once the circuit style is chosen, and the static sense-amp
// term once layout-level data exists.  Each step is a Tool; the design
// context picks how far down the chain a request runs.
#pragma once

#include <memory>

#include "flow/design_agent.hpp"
#include "model/registry.hpp"

namespace powerplay::flow {

/// Context levels of the standard flows, in refinement order.
inline const std::vector<std::string> kStandardContexts = {
    "sketch", "circuit", "layout"};

/// Build an agent with the standard memory-power flow:
///   tools:  sram_quick  -> swing_refine -> static_refine
///   rules:  ("power", "sketch")  = [sram_quick]
///           ("power", "circuit") = [sram_quick, swing_refine]
///           ("power", "layout")  = [sram_quick, swing_refine,
///                                   static_refine]
///           ("power", "")        = [sram_quick]          (default)
/// The tools evaluate through `lib`'s "sram" model, so agent results stay
/// consistent with direct spreadsheet estimates.  `lib` must outlive the
/// returned agent.
DesignAgent make_standard_agent(const model::ModelRegistry& lib);

/// A tool-backed SRAM library entry running on `agent` (which must
/// outlive the model): parameters of the plain "sram" model plus the
/// agent's `context` level.
model::ModelPtr make_sram_toolflow_model(const DesignAgent& agent);

}  // namespace powerplay::flow
