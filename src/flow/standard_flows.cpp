#include "flow/standard_flows.hpp"

#include "expr/ast.hpp"
#include "model/param.hpp"

namespace powerplay::flow {

namespace {

using model::Estimate;
using model::MapParamReader;
using model::ParamReader;

/// Copy the SRAM-relevant parameters from the incoming reader, with the
/// stage deciding which refinements are visible to the model.
MapParamReader sram_params(const ParamReader& p, bool with_swing,
                           bool with_static) {
  MapParamReader out;
  out.set("words", p.get_or("words", 1024));
  out.set("bits", p.get_or("bits", 8));
  out.set("alpha", p.get_or("alpha", 1.0));
  out.set("vdd", p.get_or("vdd", 1.5));
  out.set("f", p.get_or("f", 0.0));
  out.set("vswing", with_swing ? p.get_or("vswing", 0.0) : 0.0);
  out.set("bitline_fraction", p.get_or("bitline_fraction", 0.6));
  out.set("i_static", with_static ? p.get_or("i_static", 0.0) : 0.0);
  return out;
}

}  // namespace

DesignAgent make_standard_agent(const model::ModelRegistry& lib) {
  DesignAgent agent;
  // Capture the shared pointer: the tools stay valid even if the library
  // entry is later replaced.
  const model::ModelPtr sram = lib.find_shared("sram");
  if (sram == nullptr) {
    throw expr::ExprError("make_standard_agent: library has no 'sram'");
  }

  agent.add_tool(Tool{
      "sram_quick",
      "EQ 7 organization estimate, rail-to-rail (sketch accuracy)",
      [sram](const ParamReader& p, const Estimate&) {
        return sram->evaluate(sram_params(p, false, false));
      }});
  agent.add_tool(Tool{
      "swing_refine",
      "EQ 8 reduced-swing refinement (requires the bit-line circuit "
      "style: vswing, bitline_fraction)",
      [sram](const ParamReader& p, const Estimate&) {
        return sram->evaluate(sram_params(p, true, false));
      }});
  agent.add_tool(Tool{
      "static_refine",
      "adds the extracted sense-amp bias current (layout data)",
      [sram](const ParamReader& p, const Estimate&) {
        return sram->evaluate(sram_params(p, true, true));
      }});

  agent.add_rule(FlowRule{"power", "sketch", {"sram_quick"}});
  agent.add_rule(FlowRule{"power", "circuit", {"sram_quick", "swing_refine"}});
  agent.add_rule(FlowRule{
      "power", "layout", {"sram_quick", "swing_refine", "static_refine"}});
  agent.add_rule(FlowRule{"power", "", {"sram_quick"}});
  return agent;
}

model::ModelPtr make_sram_toolflow_model(const DesignAgent& agent) {
  std::vector<model::ParamSpec> params = {
      {"words", "number of words", 1024, "", 1, 1 << 24, true},
      {"bits", "word width", 8, "bits", 1, 512, true},
      {"vswing", "bit-line swing (circuit+ contexts)", 0.0, "V", 0, 40},
      {"bitline_fraction", "fraction of C_T on bit-lines", 0.6, "", 0, 1},
      {"i_static", "sense-amp bias (layout context)", 0.0, "A", 0, 1},
      {"alpha", "activity scale", 1.0, "", 0, 1},
      {model::kParamVdd, "supply voltage", 1.5, "V", 0, 40},
      {model::kParamFreq, "access rate", 0.0, "Hz", 0, 1e12},
  };
  return std::make_shared<ToolFlowModel>(
      "sram_toolflow",
      "SRAM entry estimated through the Design Agent's memory-power "
      "flow: context 0 (sketch) runs the EQ 7 quick estimate, context 1 "
      "(circuit) adds the EQ 8 reduced-swing refinement, context 2 "
      "(layout) adds the extracted static current.",
      std::move(params), agent, "power", kStandardContexts);
}

}  // namespace powerplay::flow
