#include "flow/design_agent.hpp"

#include <algorithm>

#include "expr/ast.hpp"

namespace powerplay::flow {

void DesignAgent::add_tool(Tool tool) {
  if (tool.name.empty()) {
    throw expr::ExprError("design agent: tool name must not be empty");
  }
  if (tools_.contains(tool.name)) {
    throw expr::ExprError("design agent: tool '" + tool.name +
                          "' already registered");
  }
  if (!tool.run) {
    throw expr::ExprError("design agent: tool '" + tool.name +
                          "' has no implementation");
  }
  tools_.emplace(tool.name, std::move(tool));
}

void DesignAgent::add_rule(FlowRule rule) {
  const auto key = std::make_pair(rule.request, rule.context);
  if (rules_.contains(key)) {
    throw expr::ExprError("design agent: rule for ('" + rule.request +
                          "', '" + rule.context + "') already registered");
  }
  if (rule.tools.empty()) {
    throw expr::ExprError("design agent: rule for '" + rule.request +
                          "' lists no tools");
  }
  for (const std::string& t : rule.tools) {
    if (!tools_.contains(t)) {
      throw expr::ExprError("design agent: rule references unknown tool '" +
                            t + "'");
    }
  }
  rules_.emplace(key, std::move(rule.tools));
}

bool DesignAgent::has_tool(const std::string& name) const {
  return tools_.contains(name);
}

std::vector<std::string> DesignAgent::tool_names() const {
  std::vector<std::string> out;
  out.reserve(tools_.size());
  for (const auto& [name, tool] : tools_) out.push_back(name);
  return out;
}

const std::vector<std::string>& DesignAgent::resolve(
    const std::string& request, const std::string& context) const {
  auto it = rules_.find({request, context});
  if (it == rules_.end()) {
    it = rules_.find({request, ""});  // default flow
  }
  if (it == rules_.end()) {
    throw expr::ExprError("design agent: no flow for request '" + request +
                          "' in context '" + context + "'");
  }
  return it->second;
}

FlowResult DesignAgent::run(const std::string& request,
                            const std::string& context,
                            const model::ParamReader& params) const {
  FlowResult out;
  for (const std::string& name : resolve(request, context)) {
    const Tool& tool = tools_.at(name);
    out.estimate = tool.run(params, out.estimate);
    out.invoked.push_back(name);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ToolFlowModel
// ---------------------------------------------------------------------------

namespace {

std::vector<model::ParamSpec> with_context_param(
    std::vector<model::ParamSpec> params, std::size_t levels) {
  params.push_back({"context",
                    "design-context level selecting the estimation flow "
                    "(0 = roughest)",
                    0, "", 0, static_cast<double>(levels - 1), true});
  return params;
}

}  // namespace

ToolFlowModel::ToolFlowModel(std::string name, std::string documentation,
                             std::vector<model::ParamSpec> params,
                             const DesignAgent& agent, std::string request,
                             std::vector<std::string> context_levels)
    : Model(std::move(name), model::Category::kSystem,
            std::move(documentation) +
                "  Tool-backed entry: evaluation is delegated to the "
                "Design Agent, which picks the tool sequence from the "
                "design context.",
            with_context_param(std::move(params), context_levels.size())),
      agent_(&agent),
      request_(std::move(request)),
      context_levels_(std::move(context_levels)) {
  if (context_levels_.empty()) {
    throw expr::ExprError("ToolFlowModel '" + this->name() +
                          "': needs at least one context level");
  }
  // Fail at construction if any level has no resolvable flow.
  for (const std::string& ctx : context_levels_) {
    (void)agent_->resolve(request_, ctx);
  }
}

const std::vector<std::string>& ToolFlowModel::flow_for_level(
    int level) const {
  if (level < 0 || level >= static_cast<int>(context_levels_.size())) {
    throw expr::ExprError("ToolFlowModel '" + name() +
                          "': context level out of range");
  }
  return agent_->resolve(request_, context_levels_[level]);
}

model::Estimate ToolFlowModel::evaluate(const model::ParamReader& p) const {
  const int level = static_cast<int>(param(p, "context"));
  if (level < 0 || level >= static_cast<int>(context_levels_.size())) {
    throw expr::ExprError("ToolFlowModel '" + name() +
                          "': context level out of range");
  }
  return agent_->run(request_, context_levels_[level], p).estimate;
}

}  // namespace powerplay::flow
