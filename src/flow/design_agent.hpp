// design_agent.hpp — the dynamic design-flow manager behind tool-backed
// models.
//
// The paper: "PowerPlay will accept any model and in fact will support
// paths to estimation tools in lieu of an equation", and "Models which
// require tool invocations are implemented through a dynamic design-flow
// manager called the Design Agent [Bentz et al.], which translates the
// hyperlink request for data into a sequence of appropriate tool
// invocations determined by the chosen design context."
//
// The pieces:
//  * Tool        — a named estimation step that refines an Estimate
//                  (e.g. quick coefficient lookup, analytical
//                  refinement, simulator run).
//  * FlowRule    — (request, context) -> ordered tool names; the
//                  "chosen design context" selects how much machinery a
//                  request spins up ("sketch" runs one cheap tool,
//                  "layout" chains refinements).
//  * DesignAgent — registry + resolver + runner, with an invocation log
//                  so callers can display what actually ran.
//  * ToolFlowModel — a library Model whose evaluate() delegates to the
//                  agent, so tool-backed entries sit on the spreadsheet
//                  exactly like equation models.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace powerplay::flow {

/// One estimation step.  Receives the parameters and the estimate
/// produced by earlier steps in the flow (a default Estimate for the
/// first step) and returns the refined estimate.
struct Tool {
  std::string name;
  std::string description;
  std::function<model::Estimate(const model::ParamReader&,
                                const model::Estimate& previous)>
      run;
};

/// Context-dependent flow selection.
struct FlowRule {
  std::string request;              ///< e.g. "power", "area"
  std::string context;              ///< e.g. "sketch", "layout"
  std::vector<std::string> tools;   ///< invocation order
};

/// Result of running a flow, with the audit trail the hyperlink pages
/// display.
struct FlowResult {
  model::Estimate estimate;
  std::vector<std::string> invoked;  ///< tool names, in execution order
};

class DesignAgent {
 public:
  /// Register a tool; duplicate names throw.
  void add_tool(Tool tool);

  /// Register a flow rule; duplicate (request, context) pairs throw, and
  /// every referenced tool must already be registered.
  void add_rule(FlowRule rule);

  [[nodiscard]] bool has_tool(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> tool_names() const;

  /// Translate a request in a context to its tool sequence.
  /// Falls back to the rule with context "" (the default flow) when the
  /// specific context has no rule; throws ExprError if neither exists.
  [[nodiscard]] const std::vector<std::string>& resolve(
      const std::string& request, const std::string& context) const;

  /// Resolve and execute.
  [[nodiscard]] FlowResult run(const std::string& request,
                               const std::string& context,
                               const model::ParamReader& params) const;

 private:
  std::map<std::string, Tool> tools_;
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      rules_;
};

/// A library model backed by an agent flow.  The design context is
/// itself a parameter-driven choice: the `context_levels` vector maps
/// the integer `context` parameter (0, 1, 2, ...) to context names, so a
/// sheet user refines a row from sketch to layout by editing one cell.
class ToolFlowModel final : public model::Model {
 public:
  ToolFlowModel(std::string name, std::string documentation,
                std::vector<model::ParamSpec> params,
                const DesignAgent& agent, std::string request,
                std::vector<std::string> context_levels);

  [[nodiscard]] model::Estimate evaluate(
      const model::ParamReader& p) const override;

  /// The tool sequence the current context level would run.
  [[nodiscard]] const std::vector<std::string>& flow_for_level(
      int level) const;

 private:
  const DesignAgent* agent_;
  std::string request_;
  std::vector<std::string> context_levels_;
};

}  // namespace powerplay::flow
