// user_model.hpp — run-time equation-defined models.
//
// "PowerPlay also provides a simple method for users to define models for
// their own primitives using an interactive HTML page.  The user is
// prompted for names, equations, and documentation information."  A
// UserModelDefinition is exactly that form's contents: parameter specs
// plus expression strings for each EQ 1 ingredient.  Definitions are
// validated eagerly (syntax, undeclared parameters, unknown functions) so
// a bad form submission fails at creation, not at Play time.
#pragma once

#include <string>
#include <vector>

#include "model/model.hpp"

namespace powerplay::model {

struct UserModelDefinition {
  std::string name;
  Category category = Category::kSystem;
  std::string documentation;
  std::vector<ParamSpec> params;

  // EQ 1 ingredients as expressions over the declared parameters plus the
  // implicit globals `vdd` [V] and `f` [Hz].  Empty string = term absent.
  std::string c_fullswing;     ///< rail-to-rail switched capacitance [F]
  std::string c_partialswing;  ///< reduced-swing capacitance [F] (EQ 8)
  std::string v_swing;         ///< swing for the partial term [V]
  std::string static_current;  ///< static/bias current [A]
  std::string power_direct;    ///< direct power [W] (data-sheet entries);
                               ///< folded in as I = P/vdd per EQ 1's I term
  std::string area;            ///< [m^2]
  std::string delay;           ///< [s]
};

/// Model driven by a UserModelDefinition.
class UserModel final : public Model {
 public:
  /// Validates the definition; throws ExprError describing the first
  /// problem (bad expression syntax, reference to an undeclared
  /// parameter, unknown function, partial-swing capacitance without a
  /// v_swing expression, no terms at all).
  explicit UserModel(UserModelDefinition def);

  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;

  [[nodiscard]] const UserModelDefinition& definition() const { return def_; }

 private:
  UserModelDefinition def_;
  expr::ExprPtr c_fullswing_;
  expr::ExprPtr c_partialswing_;
  expr::ExprPtr v_swing_;
  expr::ExprPtr static_current_;
  expr::ExprPtr power_direct_;
  expr::ExprPtr area_;
  expr::ExprPtr delay_;
};

}  // namespace powerplay::model
