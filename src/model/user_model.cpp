#include "model/user_model.hpp"

#include <algorithm>

#include "expr/parser.hpp"

namespace powerplay::model {

namespace {

const expr::FunctionTable& builtin_functions() {
  static const expr::FunctionTable table = expr::FunctionTable::with_builtins();
  return table;
}

/// The implicit globals every equation model understands, appended to the
/// declared parameters so input forms and readers see them uniformly.
std::vector<ParamSpec> with_implicit_globals(std::vector<ParamSpec> params) {
  const bool has_vdd =
      std::any_of(params.begin(), params.end(),
                  [](const ParamSpec& s) { return s.name == kParamVdd; });
  const bool has_f =
      std::any_of(params.begin(), params.end(),
                  [](const ParamSpec& s) { return s.name == kParamFreq; });
  if (!has_vdd) {
    params.push_back({kParamVdd, "supply voltage", 1.5, "V", 0, 100, false});
  }
  if (!has_f) {
    params.push_back({kParamFreq, "operation rate", 0.0, "Hz", 0, 1e12,
                      false});
  }
  return params;
}

/// Parse one equation field and check that every referenced variable is a
/// declared parameter (or vdd/f) and every function is a builtin.
expr::ExprPtr parse_field(const std::string& model_name,
                          const std::string& field,
                          const std::string& source,
                          const std::vector<ParamSpec>& params) {
  if (source.empty()) return nullptr;
  expr::ExprPtr e;
  try {
    e = expr::parse(source);
  } catch (const expr::ExprError& err) {
    throw expr::ExprError("model '" + model_name + "', field '" + field +
                          "': " + err.what());
  }
  for (const std::string& var : expr::referenced_variables(*e)) {
    if (var == kParamVdd || var == kParamFreq) continue;
    const bool declared =
        std::any_of(params.begin(), params.end(),
                    [&](const ParamSpec& s) { return s.name == var; });
    if (!declared) {
      throw expr::ExprError("model '" + model_name + "', field '" + field +
                            "': references undeclared parameter '" + var +
                            "'");
    }
  }
  for (const std::string& fn : expr::referenced_functions(*e)) {
    if (!builtin_functions().contains(fn)) {
      throw expr::ExprError("model '" + model_name + "', field '" + field +
                            "': unknown function '" + fn + "'");
    }
  }
  return e;
}

}  // namespace

UserModel::UserModel(UserModelDefinition def)
    : Model(def.name, def.category, def.documentation,
            with_implicit_globals(def.params)),
      def_(std::move(def)) {
  if (def_.name.empty()) {
    throw expr::ExprError("user model: name must not be empty");
  }
  c_fullswing_ =
      parse_field(def_.name, "c_fullswing", def_.c_fullswing, def_.params);
  c_partialswing_ = parse_field(def_.name, "c_partialswing",
                                def_.c_partialswing, def_.params);
  v_swing_ = parse_field(def_.name, "v_swing", def_.v_swing, def_.params);
  static_current_ = parse_field(def_.name, "static_current",
                                def_.static_current, def_.params);
  power_direct_ =
      parse_field(def_.name, "power_direct", def_.power_direct, def_.params);
  area_ = parse_field(def_.name, "area", def_.area, def_.params);
  delay_ = parse_field(def_.name, "delay", def_.delay, def_.params);

  if (c_partialswing_ != nullptr && v_swing_ == nullptr) {
    throw expr::ExprError("model '" + def_.name +
                          "': c_partialswing given without v_swing");
  }
  if (c_fullswing_ == nullptr && c_partialswing_ == nullptr &&
      static_current_ == nullptr && power_direct_ == nullptr) {
    throw expr::ExprError("model '" + def_.name +
                          "': no power terms defined (need at least one of "
                          "c_fullswing, c_partialswing, static_current, "
                          "power_direct)");
  }
}

Estimate UserModel::evaluate(const ParamReader& p) const {
  using namespace units;

  // Materialize the declared parameters (with validated defaults) plus
  // the implicit operating point into a flat scope the equations can see.
  // params() already includes vdd and f via with_implicit_globals.
  expr::Scope scope;
  for (const ParamSpec& spec : params()) {
    const double value = param(p, spec.name);
    scope.set(spec.name, value);
  }
  const Voltage vdd{param(p, kParamVdd)};
  const Frequency f{param(p, kParamFreq)};

  expr::Evaluator ev(scope, builtin_functions());
  auto value_of = [&](const expr::ExprPtr& e) {
    return e == nullptr ? 0.0 : ev.evaluate(*e);
  };

  std::vector<CapTerm> caps;
  if (c_fullswing_ != nullptr) {
    caps.push_back(CapTerm{"full-swing", Capacitance{value_of(c_fullswing_)},
                           Voltage{0}, /*full_swing=*/true});
  }
  if (c_partialswing_ != nullptr) {
    caps.push_back(CapTerm{"partial-swing",
                           Capacitance{value_of(c_partialswing_)},
                           Voltage{value_of(v_swing_)},
                           /*full_swing=*/false});
  }
  std::vector<StaticTerm> statics;
  if (static_current_ != nullptr) {
    statics.push_back(StaticTerm{"static", Current{value_of(static_current_)}});
  }
  if (power_direct_ != nullptr) {
    // Data-sheet power folds into EQ 1's static term: I = P / VDD.
    const double watts = value_of(power_direct_);
    if (vdd.si() <= 0.0) {
      throw expr::ExprError("model '" + def_.name +
                            "': power_direct requires vdd > 0");
    }
    statics.push_back(
        StaticTerm{"direct power", Current{watts / vdd.si()}});
  }

  return make_estimate(std::move(caps), std::move(statics),
                       OperatingPoint{vdd, f}, Area{value_of(area_)},
                       Time{value_of(delay_)});
}

}  // namespace powerplay::model
