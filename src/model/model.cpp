#include "model/model.hpp"
#include <cmath>

namespace powerplay::model {

std::string to_string(Category c) {
  switch (c) {
    case Category::kComputation: return "computation";
    case Category::kStorage: return "storage";
    case Category::kController: return "controller";
    case Category::kInterconnect: return "interconnect";
    case Category::kProcessor: return "processor";
    case Category::kAnalog: return "analog";
    case Category::kConverter: return "converter";
    case Category::kSystem: return "system";
    case Category::kMacro: return "macro";
  }
  return "?";
}

const ParamSpec* Model::find_param(const std::string& name) const {
  for (const ParamSpec& s : params_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double Model::param(const ParamReader& p, const std::string& name) const {
  const ParamSpec* spec = find_param(name);
  if (spec == nullptr) {
    throw expr::ExprError("model '" + name_ + "' has no parameter '" + name +
                          "'");
  }
  const double value = p.get_or(name, spec->default_value);
  if (std::isnan(value)) {
    throw expr::ExprError("model '" + name_ + "': parameter '" + name +
                          "' is required but unbound");
  }
  spec->validate(value);
  return value;
}

OperatingPoint Model::operating_point(const ParamReader& p) const {
  return OperatingPoint{units::Voltage{param(p, kParamVdd)},
                        units::Frequency{param(p, kParamFreq)}};
}

}  // namespace powerplay::model
