#include "model/param.hpp"

#include <cmath>

namespace powerplay::model {

void ParamSpec::validate(double value) const {
  if (std::isnan(value)) {
    throw expr::ExprError("parameter '" + name + "' evaluated to NaN");
  }
  if (value < min || value > max) {
    throw expr::ExprError("parameter '" + name + "' = " +
                          std::to_string(value) + " outside allowed range [" +
                          std::to_string(min) + ", " + std::to_string(max) +
                          "]");
  }
  if (integer && value != std::floor(value)) {
    throw expr::ExprError("parameter '" + name + "' = " +
                          std::to_string(value) + " must be an integer");
  }
}

const ParamSpec* ScopeParamReader::find_spec(const std::string& name) const {
  if (specs_ == nullptr) return nullptr;
  for (const ParamSpec& s : *specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double ScopeParamReader::get(const std::string& name) const {
  const ParamSpec* spec = find_spec(name);
  double value;
  if (scope_->lookup(name)) {
    expr::Evaluator ev(*scope_, *functions_);
    value = ev.variable(name);
  } else if (spec != nullptr) {
    value = spec->default_value;
  } else {
    throw expr::ExprError("unbound parameter '" + name + "'");
  }
  if (spec != nullptr) spec->validate(value);
  return value;
}

double ScopeParamReader::get_or(const std::string& name,
                                double fallback) const {
  const ParamSpec* spec = find_spec(name);
  double value;
  if (scope_->lookup(name)) {
    expr::Evaluator ev(*scope_, *functions_);
    value = ev.variable(name);
  } else if (spec != nullptr && !std::isnan(spec->default_value)) {
    // A NaN default marks "no default" (macro parameters): fall back.
    value = spec->default_value;
  } else {
    return fallback;
  }
  if (spec != nullptr) spec->validate(value);
  return value;
}

MapParamReader::MapParamReader(
    std::vector<std::pair<std::string, double>> values)
    : values_(std::move(values)) {}

void MapParamReader::set(const std::string& name, double value) {
  for (auto& [n, v] : values_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  values_.emplace_back(name, value);
}

double MapParamReader::get(const std::string& name) const {
  for (const auto& [n, v] : values_) {
    if (n == name) return v;
  }
  throw expr::ExprError("unbound parameter '" + name + "'");
}

double MapParamReader::get_or(const std::string& name, double fallback) const {
  for (const auto& [n, v] : values_) {
    if (n == name) return v;
  }
  return fallback;
}

units::Voltage read_vdd(const ParamReader& params) {
  return units::Voltage{params.get(kParamVdd)};
}

units::Frequency read_frequency(const ParamReader& params) {
  return units::Frequency{params.get_or(kParamFreq, 0.0)};
}

}  // namespace powerplay::model
