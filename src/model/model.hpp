// model.hpp — the Model interface: PowerPlay's unit of library content.
//
// "PowerPlay allows any block to be modeled using any combination of
// C_sw,i, V_swing,i and I as a function of any input parameters to give
// maximum flexibility."  A Model owns its metadata (name, category,
// documentation text shown behind the spreadsheet hyperlink, parameter
// specs with defaults), and maps resolved parameters to an EQ 1 Estimate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/estimate.hpp"
#include "model/param.hpp"

namespace powerplay::model {

/// Component classes, mirroring the paper's Models section.
enum class Category {
  kComputation,
  kStorage,
  kController,
  kInterconnect,
  kProcessor,
  kAnalog,
  kConverter,
  kSystem,   ///< data-sheet / measured components (displays, radios, ...)
  kMacro,    ///< hierarchical composition of other models
};

std::string to_string(Category c);

/// Abstract model.  Concrete models live in src/models (the built-in
/// UC-Berkeley-style library) and src/model/user_model.hpp (equation
/// models defined at run time through the web form).
class Model {
 public:
  Model(std::string name, Category category, std::string documentation,
        std::vector<ParamSpec> params)
      : name_(std::move(name)),
        category_(category),
        documentation_(std::move(documentation)),
        params_(std::move(params)) {}
  virtual ~Model() = default;

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Category category() const { return category_; }

  /// Prose shown on the model's documentation page: which paper equation
  /// it implements, assumptions, characterization provenance.
  [[nodiscard]] const std::string& documentation() const {
    return documentation_;
  }

  /// Declared parameters (used to render the Figure 4 input form and to
  /// provide defaults + validation).
  [[nodiscard]] const std::vector<ParamSpec>& params() const {
    return params_;
  }

  [[nodiscard]] const ParamSpec* find_param(const std::string& name) const;

  /// Map parameters to an EQ 1 estimate.  Implementations must read
  /// every tunable through `p` so sheet expressions can override it.
  [[nodiscard]] virtual Estimate evaluate(const ParamReader& p) const = 0;

  /// True when the EQ 1 breakdown evaluate() returns (cap_terms,
  /// static_terms, area, delay) does not depend on vdd or f: the
  /// operating point enters exclusively through operating_point(p) ->
  /// make_estimate, and every other read is a declared parameter.
  /// Lane-batched execution (sheet/batch.cpp) uses this to capture the
  /// terms once per lane block and replay only the operating-point
  /// arithmetic (evaluate_terms) per lane.  Models whose terms read
  /// vdd or f directly — converters deriving loss from the input rail,
  /// processors folding vdd into scaling laws, data-sheet components —
  /// must leave this false.
  [[nodiscard]] virtual bool operating_point_only() const { return false; }

  /// Read one declared parameter: the reader's binding if present, else
  /// the spec default; validated against the spec either way.  This is
  /// the single read path every built-in model uses, so defaults and
  /// range checks behave identically for spreadsheet scopes, web forms
  /// and direct MapParamReader calls.
  [[nodiscard]] double param(const ParamReader& p,
                             const std::string& name) const;

  /// The EQ 1 operating point read through `param` (vdd, f).
  [[nodiscard]] OperatingPoint operating_point(const ParamReader& p) const;

 private:
  std::string name_;
  Category category_;
  std::string documentation_;
  std::vector<ParamSpec> params_;
};

using ModelPtr = std::shared_ptr<const Model>;

}  // namespace powerplay::model
