// registry.hpp — the shared model library.
//
// "Existing hardware models are shared among all users, and new models
// are easily created and integrated."  The registry is the in-process
// representation of one site's library: built-in characterized models
// plus user-defined equation models and saved macros.  src/library adds
// persistence; src/web/remote.hpp adds fetching entries from other sites.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace powerplay::model {

class ModelRegistry {
 public:
  /// Add a model; throws ExprError if the name is already taken
  /// (library names are site-wide unique, like the paper's URLs).
  void add(ModelPtr model);

  /// Add, replacing any model with the same name (used when a user
  /// edits their own model definition).
  void add_or_replace(ModelPtr model);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Find by name; nullptr when absent.
  [[nodiscard]] const Model* find(const std::string& name) const;

  /// Find by name as a shared pointer (for handing to macros/remotes).
  [[nodiscard]] ModelPtr find_shared(const std::string& name) const;

  /// Find by name; throws ExprError with a helpful message when absent.
  [[nodiscard]] const Model& at(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::vector<const Model*> by_category(Category c) const;
  [[nodiscard]] std::size_t size() const { return models_.size(); }

 private:
  std::map<std::string, ModelPtr> models_;
};

}  // namespace powerplay::model
