#include "model/registry.hpp"

#include "expr/ast.hpp"

namespace powerplay::model {

void ModelRegistry::add(ModelPtr model) {
  const std::string& name = model->name();
  if (models_.contains(name)) {
    throw expr::ExprError("model '" + name + "' already exists in library");
  }
  models_.emplace(name, std::move(model));
}

void ModelRegistry::add_or_replace(ModelPtr model) {
  models_[model->name()] = std::move(model);
}

bool ModelRegistry::contains(const std::string& name) const {
  return models_.contains(name);
}

const Model* ModelRegistry::find(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

ModelPtr ModelRegistry::find_shared(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

const Model& ModelRegistry::at(const std::string& name) const {
  const Model* m = find(name);
  if (m == nullptr) {
    throw expr::ExprError("model '" + name + "' not found in library");
  }
  return *m;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

std::vector<const Model*> ModelRegistry::by_category(Category c) const {
  std::vector<const Model*> out;
  for (const auto& [name, model] : models_) {
    if (model->category() == c) out.push_back(model.get());
  }
  return out;
}

}  // namespace powerplay::model
