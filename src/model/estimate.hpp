// estimate.hpp — the output side of PowerPlay's model template (EQ 1).
//
// Every model, regardless of component class, reduces to:
//
//   P = sum_i C_sw,i * V_swing,i * V_DD * f  +  I * V_DD        (EQ 1)
//
// where each i is a "capacitance term" (a group of nodes switching an
// average capacitance C_sw,i over a swing V_swing,i once per operation at
// rate f) and I lumps the static currents (leakage, bias).  An Estimate
// carries both the EQ 1 breakdown and the derived spreadsheet columns
// (energy per operation, dynamic/static power, area, delay).
#pragma once

#include <string>
#include <vector>

#include "units/units.hpp"

namespace powerplay::model {

/// One dynamic term of EQ 1.  In rail-to-rail CMOS `full_swing` is true
/// and the swing is taken to be V_DD at evaluation time; reduced-swing
/// nodes (memory bit-lines, EQ 8) carry an explicit V_swing.
struct CapTerm {
  std::string label;                ///< e.g. "bit-lines", "array core"
  units::Capacitance c_sw;          ///< average capacitance switched per op
  units::Voltage v_swing;           ///< swing; ignored when full_swing
  bool full_swing = true;
};

/// One static term of EQ 1: a constant current drawn from V_DD.
struct StaticTerm {
  std::string label;                ///< e.g. "sense-amp bias", "leakage"
  units::Current current;
};

/// The global knobs every model scales with: supply voltage and the rate
/// at which this block performs operations (its *access* frequency, which
/// the sheet derives from activity expressions such as `f/16`).
struct OperatingPoint {
  units::Voltage vdd;
  units::Frequency f;
};

/// Row results as shown in the Figure 2 spreadsheet.
struct Estimate {
  /// Effective full-swing-equivalent switched capacitance per operation:
  /// sum of C_i * (V_swing,i / V_DD); equals plain sum(C_i) for
  /// rail-to-rail logic.  This is the "Csw" column of Figure 2.
  units::Capacitance switched_capacitance;

  /// Dynamic energy per operation: sum C_i * V_swing,i * V_DD.
  units::Energy energy_per_op;

  /// energy_per_op * f.
  units::Power dynamic_power;

  /// sum(I_j) * V_DD.
  units::Power static_power;

  units::Area area;      ///< optional; zero when the model has no area data
  units::Time delay;     ///< optional; zero when the model has no delay data

  std::vector<CapTerm> cap_terms;       ///< EQ 1 breakdown, for doc pages
  std::vector<StaticTerm> static_terms;

  [[nodiscard]] units::Power total_power() const {
    return dynamic_power + static_power;
  }
};

/// The derived EQ 1 quantities at one operating point, without the term
/// breakdown vectors or the area/delay metadata: what the lane-batched
/// fast path (sheet/batch.cpp) recomputes per lane from captured terms.
struct EstimateCore {
  units::Capacitance switched_capacitance;
  units::Energy energy_per_op;
  units::Power dynamic_power;
  units::Power static_power;
};

/// The EQ 1 operating-point arithmetic shared by make_estimate and the
/// batch fast path: identical operations in identical order, so
/// re-evaluating a captured term list at a new operating point is
/// bit-identical to a fresh make_estimate there.  Throws on a negative
/// supply or frequency, like make_estimate.
EstimateCore evaluate_terms(const std::vector<CapTerm>& cap_terms,
                            const std::vector<StaticTerm>& static_terms,
                            const OperatingPoint& op);

/// Assemble an Estimate from EQ 1 terms at an operating point.
/// Full-swing terms contribute C*VDD*VDD per op; partial-swing terms
/// C*Vswing*VDD (EQ 8); static terms I*VDD.
Estimate make_estimate(std::vector<CapTerm> cap_terms,
                       std::vector<StaticTerm> static_terms,
                       const OperatingPoint& op,
                       units::Area area = units::Area{0},
                       units::Time delay = units::Time{0});

/// Merge component estimates into a composite (used by hierarchical
/// macros): powers and areas add; delay takes the max (a first-order
/// serial/parallel-agnostic bound, as in the paper's area/timing aside).
Estimate combine(const std::vector<Estimate>& parts);

}  // namespace powerplay::model
