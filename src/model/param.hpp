// param.hpp — parameter schemas and the reader interface models consume.
//
// A model declares what it can be "customized by defining the model
// parameters, such as bit-width, memory block organization, and
// signal-correlation characteristics".  The sheet binds those names to
// literals or expressions; at evaluation time the model sees only a
// ParamReader and never touches the expression machinery directly.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "expr/eval.hpp"
#include "units/units.hpp"

namespace powerplay::model {

/// Declaration of one model parameter.
struct ParamSpec {
  std::string name;          ///< e.g. "bitwidth", "words", "vdd"
  std::string description;   ///< shown on the model's input form (Figure 4)
  double default_value = 0;
  std::string unit;          ///< informational: "bits", "V", "Hz", ...
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
  bool integer = false;      ///< parameter must be a whole number

  /// Throw ExprError if `value` violates this spec.
  void validate(double value) const;
};

/// Names every model understands: the two global knobs of EQ 1.
inline constexpr const char* kParamVdd = "vdd";  ///< supply voltage [V]
inline constexpr const char* kParamFreq = "f";   ///< access rate [Hz]

/// Read-only view of resolved parameter values.
class ParamReader {
 public:
  virtual ~ParamReader() = default;

  /// Resolve `name`; throws ExprError when unbound.
  [[nodiscard]] virtual double get(const std::string& name) const = 0;

  /// Resolve `name`, falling back to `fallback` when unbound.
  [[nodiscard]] virtual double get_or(const std::string& name,
                                      double fallback) const = 0;
};

/// ParamReader backed by an expression scope: reads walk the scope chain
/// (row -> macro -> design globals) and evaluate any bound formulas.
/// Specs' defaults are consulted after the scope, and values are
/// validated against the matching spec on every read.
class ScopeParamReader final : public ParamReader {
 public:
  ScopeParamReader(const expr::Scope& scope,
                   const expr::FunctionTable& functions,
                   const std::vector<ParamSpec>* specs = nullptr)
      : scope_(&scope), functions_(&functions), specs_(specs) {}

  [[nodiscard]] double get(const std::string& name) const override;
  [[nodiscard]] double get_or(const std::string& name,
                              double fallback) const override;

 private:
  [[nodiscard]] const ParamSpec* find_spec(const std::string& name) const;

  const expr::Scope* scope_;
  const expr::FunctionTable* functions_;
  const std::vector<ParamSpec>* specs_;
};

/// Trivial reader over an explicit map; handy in tests and in the web
/// form handlers, where values arrive as decoded form fields.
class MapParamReader final : public ParamReader {
 public:
  MapParamReader() = default;
  explicit MapParamReader(std::vector<std::pair<std::string, double>> values);

  void set(const std::string& name, double value);

  [[nodiscard]] double get(const std::string& name) const override;
  [[nodiscard]] double get_or(const std::string& name,
                              double fallback) const override;

 private:
  std::vector<std::pair<std::string, double>> values_;
};

/// Read the EQ 1 operating point (vdd, f) from a reader.
/// `f` defaults to 0 Hz (pure energy/op query) when unbound.
units::Voltage read_vdd(const ParamReader& params);
units::Frequency read_frequency(const ParamReader& params);

}  // namespace powerplay::model
