#include "model/estimate.hpp"

#include <algorithm>

#include "expr/ast.hpp"

namespace powerplay::model {

using namespace units;

EstimateCore evaluate_terms(const std::vector<CapTerm>& cap_terms,
                            const std::vector<StaticTerm>& static_terms,
                            const OperatingPoint& op) {
  if (op.vdd.si() < 0) {
    throw expr::ExprError("operating point: negative supply voltage");
  }
  if (op.f.si() < 0) {
    throw expr::ExprError("operating point: negative frequency");
  }

  Energy energy{0};
  Capacitance ceff{0};
  for (const CapTerm& t : cap_terms) {
    const Voltage swing = t.full_swing ? op.vdd : t.v_swing;
    energy += t.c_sw * swing * op.vdd;
    if (op.vdd.si() > 0) {
      ceff += t.c_sw * (swing.si() / op.vdd.si());
    } else {
      ceff += t.c_sw;
    }
  }
  Current istatic{0};
  for (const StaticTerm& t : static_terms) istatic += t.current;

  EstimateCore core;
  core.switched_capacitance = ceff;
  core.energy_per_op = energy;
  core.dynamic_power = energy * op.f;
  core.static_power = istatic * op.vdd;
  return core;
}

Estimate make_estimate(std::vector<CapTerm> cap_terms,
                       std::vector<StaticTerm> static_terms,
                       const OperatingPoint& op, Area area, Time delay) {
  const EstimateCore core = evaluate_terms(cap_terms, static_terms, op);

  Estimate e;
  e.switched_capacitance = core.switched_capacitance;
  e.energy_per_op = core.energy_per_op;
  e.dynamic_power = core.dynamic_power;
  e.static_power = core.static_power;
  e.area = area;
  e.delay = delay;
  e.cap_terms = std::move(cap_terms);
  e.static_terms = std::move(static_terms);
  return e;
}

Estimate combine(const std::vector<Estimate>& parts) {
  Estimate out;
  for (const Estimate& p : parts) {
    out.switched_capacitance += p.switched_capacitance;
    out.energy_per_op += p.energy_per_op;
    out.dynamic_power += p.dynamic_power;
    out.static_power += p.static_power;
    out.area += p.area;
    out.delay = std::max(out.delay, p.delay);
    out.cap_terms.insert(out.cap_terms.end(), p.cap_terms.begin(),
                         p.cap_terms.end());
    out.static_terms.insert(out.static_terms.end(), p.static_terms.begin(),
                            p.static_terms.end());
  }
  return out;
}

}  // namespace powerplay::model
