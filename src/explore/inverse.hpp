// inverse.hpp — inverse queries on monotone compiled plans.
//
// The paper's what-if loop asks "what is the power at this pixel rate";
// a designer usually wants the converse: "what is the *largest* pixel
// rate that still meets 100 µW?"  When the chosen metric is monotone in
// the queried parameter over the bracket, that answer is a bisection —
// ~50 Plays instead of a dense sweep.
//
// Monotonicity is not assumed: the solver first probes the bracket at
// `probe_points` equally spaced values (in parallel through the
// engine) and rejects the query with an explicit error — naming the
// violating probe pair — when the metric is neither non-decreasing nor
// non-increasing.  A non-monotone metric has no single answer a
// bisection could find, and silently returning one of several boundary
// crossings would be worse than refusing.
#pragma once

#include <cstdint>
#include <string>

#include "engine/engine.hpp"

namespace powerplay::explore {

struct InverseSpec {
  std::string param;            ///< global parameter to solve for
  double lo = 0;                ///< bracket (lo < hi required)
  double hi = 0;
  std::string metric = "power"; ///< power | area | energy | delay
  double limit = 0;             ///< constraint bound on the metric
  /// true: constraint is metric <= limit; false: metric >= limit.
  bool upper_bound = true;
  /// true: find the largest feasible param value; false: the smallest.
  bool maximize = true;

  std::size_t probe_points = 9;  ///< monotonicity probe (>= 3)
  double tol_rel = 1e-9;         ///< bracket width termination, relative
  std::size_t max_iters = 200;   ///< bisection safety stop
};

struct InverseResult {
  bool feasible = false;
  double param_value = 0;   ///< answer when feasible
  double metric_value = 0;  ///< metric at the answer
  bool increasing = false;  ///< probe verdict: metric grows with param
  std::size_t evaluations = 0;
  std::size_t iterations = 0;  ///< bisection steps taken
};

/// Solve.  Throws expr::ExprError on an empty/inverted bracket, an
/// unknown metric or parameter, or a non-monotone probe.
[[nodiscard]] InverseResult solve_inverse(
    engine::EvalEngine& engine, const sheet::Design& design,
    const InverseSpec& spec, const sheet::SweepProgress& progress = {});

[[nodiscard]] std::string inverse_table(const InverseSpec& spec,
                                        const InverseResult& r);
[[nodiscard]] std::string inverse_csv(const InverseSpec& spec,
                                      const InverseResult& r);

}  // namespace powerplay::explore
