#include "explore/pareto.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace powerplay::explore {

bool is_metric(const std::string& name) {
  return name == "power" || name == "area" || name == "energy" ||
         name == "delay";
}

double metric_value(const sheet::PlayResult& play, const std::string& name) {
  if (name == "power") return play.total.total_power().si();
  if (name == "area") return play.total.area.si();
  if (name == "energy") return play.total.energy_per_op.si();
  return play.total.delay.si();
}

double metric_column(const sheet::PointColumns& cols, std::size_t i,
                     const std::string& name) {
  if (name == "power") return cols.power_w[i];
  if (name == "area") return cols.area_m2[i];
  if (name == "energy") return cols.energy_j[i];
  return cols.delay_s[i];
}

Objective parse_objective(const std::string& text,
                          const std::vector<std::string>& param_names) {
  Objective o;
  std::string name = text;
  bool forced = false;
  if (name.rfind("min:", 0) == 0) {
    o.maximize = false;
    forced = true;
    name = name.substr(4);
  } else if (name.rfind("max:", 0) == 0) {
    o.maximize = true;
    forced = true;
    name = name.substr(4);
  }
  o.name = name;
  const bool param = std::find(param_names.begin(), param_names.end(),
                               name) != param_names.end();
  if (!param && !is_metric(name)) {
    throw expr::ExprError(
        "pareto: unknown objective '" + name +
        "' — use power/area/energy/delay or one of the explored "
        "parameters, optionally prefixed min:/max:");
  }
  if (!forced) o.maximize = param;  // knobs maximize, costs minimize
  return o;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<std::vector<double>>& rows,
    const std::vector<bool>& maximize) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != maximize.size()) {
      throw expr::ExprError(
          "pareto_frontier: row width must match objective count");
    }
    bool dominated = false;
    for (std::size_t j = 0; j < rows.size() && !dominated; ++j) {
      if (j == i) continue;
      bool no_worse = true;
      bool strictly_better = false;
      for (std::size_t k = 0; k < maximize.size(); ++k) {
        const double a = maximize[k] ? rows[j][k] : -rows[j][k];
        const double b = maximize[k] ? rows[i][k] : -rows[i][k];
        if (a < b) {
          no_worse = false;
          break;
        }
        if (a > b) strictly_better = true;
      }
      dominated = no_worse && strictly_better;
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

ParetoResult run_pareto(engine::EvalEngine& engine,
                        const sheet::Design& design, const ParetoSpec& spec,
                        const sheet::SweepProgress& progress) {
  const bool grid = !spec.axes.empty();
  const bool sampled = !spec.dists.empty();
  if (grid == sampled) {
    throw expr::ExprError(
        "pareto: give either grid axes or sampling distributions");
  }
  if (spec.objectives.empty()) {
    throw expr::ExprError("pareto: at least one objective required");
  }

  ParetoResult out;
  out.objectives = spec.objectives;

  if (grid) {
    std::size_t total = 1;
    for (const ParetoAxis& axis : spec.axes) {
      if (axis.values.empty()) {
        throw expr::ExprError("pareto: axis '" + axis.param +
                              "' has no values");
      }
      out.param_names.push_back(axis.param);
      if (total > ParetoSpec::kMaxPoints / axis.values.size()) {
        throw expr::ExprError("pareto: grid exceeds " +
                              std::to_string(ParetoSpec::kMaxPoints) +
                              " points");
      }
      total *= axis.values.size();
    }
    // Cartesian product in row-major axis order: the last axis varies
    // fastest, so point order (and every downstream byte) is fixed.
    out.points.assign(total, {});
    for (std::size_t i = 0; i < total; ++i) {
      std::size_t rest = i;
      std::vector<double> point(spec.axes.size());
      for (std::size_t j = spec.axes.size(); j-- > 0;) {
        const auto& vals = spec.axes[j].values;
        point[j] = vals[rest % vals.size()];
        rest /= vals.size();
      }
      out.points[i] = std::move(point);
    }
  } else {
    if (spec.samples == 0) {
      throw expr::ExprError("pareto: sample count must be positive");
    }
    if (spec.samples > ParetoSpec::kMaxPoints) {
      throw expr::ExprError("pareto: sample count exceeds " +
                            std::to_string(ParetoSpec::kMaxPoints));
    }
    for (const DistParam& p : spec.dists) out.param_names.push_back(p.name);
    out.points = sample_points(spec.dists, spec.samples, spec.seed);
  }

  // Columnar batch evaluation: everything downstream (objective rows,
  // frontier filter, renderers) reads four metric columns, so the
  // per-point PlayResult trees never materialize.
  sheet::PointColumns cols = engine.play_points_columnar(
      design, out.param_names, out.points, progress);

  const std::size_t count = cols.size();
  out.objective_values.reserve(count);
  std::vector<bool> maximize;
  for (const Objective& o : out.objectives) maximize.push_back(o.maximize);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> row;
    row.reserve(out.objectives.size());
    for (const Objective& o : out.objectives) {
      const auto it = std::find(out.param_names.begin(),
                                out.param_names.end(), o.name);
      row.push_back(it != out.param_names.end()
                        ? out.points[i][static_cast<std::size_t>(
                              it - out.param_names.begin())]
                        : metric_column(cols, i, o.name));
    }
    out.objective_values.push_back(std::move(row));
  }
  out.power_w = std::move(cols.power_w);
  out.area_m2 = std::move(cols.area_m2);
  out.frontier = pareto_frontier(out.objective_values, maximize);
  return out;
}

std::string pareto_table(const ParetoResult& r) {
  std::ostringstream os;
  os << "pareto frontier: " << r.frontier.size() << " of "
     << r.points.size() << " points non-dominated\nobjectives:";
  for (const Objective& o : r.objectives) {
    os << ' ' << (o.maximize ? "max:" : "min:") << o.name;
  }
  os << "\n";
  for (const std::string& name : r.param_names) os << name << '\t';
  for (const Objective& o : r.objectives) os << o.name << '\t';
  os << "\n";
  os << std::setprecision(9);
  for (const std::size_t i : r.frontier) {
    for (const double v : r.points[i]) os << v << '\t';
    for (const double v : r.objective_values[i]) os << v << '\t';
    os << "\n";
  }
  return os.str();
}

std::string pareto_csv(const ParetoResult& r) {
  std::ostringstream os;
  os << std::setprecision(9);
  for (const std::string& name : r.param_names) os << name << ',';
  for (const Objective& o : r.objectives) os << o.name << ',';
  os << "total_power_w,area_m2,frontier\n";
  std::vector<char> on(r.points.size(), 0);
  for (const std::size_t i : r.frontier) on[i] = 1;
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    for (const double v : r.points[i]) os << v << ',';
    for (const double v : r.objective_values[i]) os << v << ',';
    os << r.power_w[i] << ',' << r.area_m2[i] << ','
       << static_cast<int>(on[i]) << '\n';
  }
  return os.str();
}

std::string pareto_json(const ParetoResult& r) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "[";
  bool first = true;
  for (const std::size_t i : r.frontier) {
    if (!first) os << ",";
    first = false;
    os << "{";
    for (std::size_t j = 0; j < r.param_names.size(); ++j) {
      os << "\"" << r.param_names[j] << "\":" << r.points[i][j] << ",";
    }
    for (std::size_t j = 0; j < r.objectives.size(); ++j) {
      os << "\"" << (r.objectives[j].maximize ? "max:" : "min:")
         << r.objectives[j].name << "\":" << r.objective_values[i][j] << ",";
    }
    os << "\"total_power_w\":" << r.power_w[i] << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace powerplay::explore
