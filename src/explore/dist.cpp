#include "explore/dist.hpp"

#include <cmath>
#include <sstream>

#include "expr/ast.hpp"
#include "expr/eval.hpp"
#include "expr/parser.hpp"

namespace powerplay::explore {

namespace {

constexpr const char* kSyntaxHelp =
    " — expected uniform(a,b), normal(mu,sigma) or choice(v1,v2,...)";

/// Evaluate one argument as a constant expression (no free variables).
double constant_arg(const expr::Expr& e, const std::string& source) {
  static const expr::Scope kEmpty;
  try {
    return expr::evaluate(e, kEmpty, expr::FunctionTable::builtins());
  } catch (const expr::ExprError& err) {
    throw expr::ExprError("distribution '" + source +
                          "': arguments must be constants (" + err.what() +
                          ")");
  }
}

std::string number_text(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

double Distribution::mean() const {
  switch (kind) {
    case DistKind::kUniform:
      return (a + b) / 2;
    case DistKind::kNormal:
      return a;
    case DistKind::kChoice: {
      double sum = 0;
      for (const double v : choices) sum += v;
      return choices.empty() ? 0 : sum / static_cast<double>(choices.size());
    }
  }
  return 0;
}

Distribution parse_distribution(const std::string& source) {
  expr::ExprPtr ast;
  try {
    ast = expr::parse(source);
  } catch (const expr::ExprError& err) {
    throw expr::ExprError("bad distribution '" + source + "': " + err.what() +
                          kSyntaxHelp);
  }
  const auto* call = std::get_if<expr::CallNode>(&ast->node);
  if (call == nullptr) {
    throw expr::ExprError("bad distribution '" + source + "'" + kSyntaxHelp);
  }

  Distribution d;
  std::vector<double> args;
  args.reserve(call->args.size());
  for (const expr::ExprPtr& arg : call->args) {
    args.push_back(constant_arg(*arg, source));
  }

  if (call->name == "uniform") {
    if (args.size() != 2) {
      throw expr::ExprError("uniform takes exactly two arguments" +
                            std::string(kSyntaxHelp));
    }
    if (!(args[0] <= args[1])) {
      throw expr::ExprError("uniform(" + number_text(args[0]) + ", " +
                            number_text(args[1]) +
                            "): low bound must not exceed high bound");
    }
    d.kind = DistKind::kUniform;
    d.a = args[0];
    d.b = args[1];
    d.source = "uniform(" + number_text(d.a) + "," + number_text(d.b) + ")";
  } else if (call->name == "normal") {
    if (args.size() != 2) {
      throw expr::ExprError("normal takes exactly two arguments" +
                            std::string(kSyntaxHelp));
    }
    if (!(args[1] >= 0)) {
      throw expr::ExprError("normal(" + number_text(args[0]) + ", " +
                            number_text(args[1]) +
                            "): sigma must be non-negative");
    }
    d.kind = DistKind::kNormal;
    d.a = args[0];
    d.b = args[1];
    d.source = "normal(" + number_text(d.a) + "," + number_text(d.b) + ")";
  } else if (call->name == "choice") {
    if (args.empty()) {
      throw expr::ExprError("choice needs at least one value" +
                            std::string(kSyntaxHelp));
    }
    d.kind = DistKind::kChoice;
    d.choices = std::move(args);
    d.source = "choice(";
    for (std::size_t i = 0; i < d.choices.size(); ++i) {
      if (i > 0) d.source += ",";
      d.source += number_text(d.choices[i]);
    }
    d.source += ")";
  } else {
    throw expr::ExprError("unknown distribution '" + call->name + "'" +
                          kSyntaxHelp);
  }
  return d;
}

std::vector<DistParam> parse_dist_params(const std::string& text) {
  std::vector<DistParam> out;
  std::size_t pos = 0;
  while (pos <= text.size() && !text.empty()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw expr::ExprError(
          "bad distribution entry '" + item +
          "' — expected name=uniform(a,b), name=normal(mu,sigma) or "
          "name=choice(v1,v2,...)");
    }
    DistParam p;
    p.name = item.substr(0, eq);
    p.dist = parse_distribution(item.substr(eq + 1));
    out.push_back(std::move(p));
  }
  if (out.empty()) {
    throw expr::ExprError("no parameter distributions given" +
                          std::string(" — expected name=dist[;name=dist...]"));
  }
  return out;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t seed, std::uint64_t point, std::uint64_t draw) {
  // Two finalizer rounds decorrelate the three counters; the top 53
  // bits make an exactly representable double in [0, 1).
  std::uint64_t h = mix64(seed ^ (0xd1342543de82ef95ull * (point + 1)));
  h = mix64(h ^ (0xaf251af3b0f025b5ull * (draw + 1)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double sample(const Distribution& d, std::uint64_t seed, std::uint64_t point,
              std::size_t param_index) {
  const std::uint64_t draw = static_cast<std::uint64_t>(param_index) * 2;
  const double u = u01(seed, point, draw);
  switch (d.kind) {
    case DistKind::kUniform:
      return d.a + (d.b - d.a) * u;
    case DistKind::kNormal: {
      // Box-Muller; 1-u keeps the log argument in (0, 1].
      const double v = u01(seed, point, draw + 1);
      const double r = std::sqrt(-2.0 * std::log(1.0 - u));
      return d.a + d.b * r * std::cos(2.0 * 3.14159265358979323846 * v);
    }
    case DistKind::kChoice: {
      auto idx = static_cast<std::size_t>(
          u * static_cast<double>(d.choices.size()));
      if (idx >= d.choices.size()) idx = d.choices.size() - 1;
      return d.choices[idx];
    }
  }
  return 0;
}

std::vector<std::vector<double>> sample_points(
    const std::vector<DistParam>& params, std::size_t samples,
    std::uint64_t seed) {
  std::vector<std::vector<double>> points(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    points[i].reserve(params.size());
    for (std::size_t j = 0; j < params.size(); ++j) {
      points[i].push_back(sample(params[j].dist, seed, i, j));
    }
  }
  return points;
}

}  // namespace powerplay::explore
