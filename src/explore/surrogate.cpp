#include "explore/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace powerplay::explore {

namespace {

constexpr double kRidge = 1e-10;
constexpr const char* kDocPrefix = "[surrogate]";

std::string num17(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

/// Solve A x = b (A symmetric positive definite up to the ridge) by
/// Gaussian elimination with partial pivoting.  The systems here are
/// tiny (a handful of basis terms), so numerics beat cleverness.
std::vector<double> solve(std::vector<std::vector<double>> a,
                          std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (a[pivot][col] == 0) {
      throw expr::ExprError(
          "surrogate: singular normal equations — the training points do "
          "not span the basis (try more samples or a wider range)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      if (factor == 0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t c = row + 1; c < n; ++c) acc -= a[row][c] * x[c];
    x[row] = acc / a[row][row];
  }
  return x;
}

/// Standardized feature vector for one point.
std::vector<double> features(const FitResult& fit,
                             const std::vector<double>& point) {
  std::vector<double> z(point.size());
  for (std::size_t j = 0; j < point.size(); ++j) {
    const double raw = fit.log_basis ? std::log(point[j]) : point[j];
    z[j] = (raw - fit.mean[j]) / fit.scale[j];
  }
  return z;
}

double term_value(const std::pair<int, int>& ix,
                  const std::vector<double>& z) {
  if (ix.first < 0) return 1.0;
  double v = z[static_cast<std::size_t>(ix.first)];
  if (ix.second >= 0) v *= z[static_cast<std::size_t>(ix.second)];
  return v;
}

}  // namespace

double surrogate_predict(const FitResult& fit,
                         const std::vector<double>& point) {
  const std::vector<double> z = features(fit, point);
  double y = 0;
  for (std::size_t t = 0; t < fit.term_index.size(); ++t) {
    y += fit.coefficients[t] * term_value(fit.term_index[t], z);
  }
  return y;
}

bool is_surrogate_doc(const std::string& documentation) {
  return documentation.rfind(kDocPrefix, 0) == 0;
}

FitResult fit_surrogate(engine::EvalEngine& engine,
                        const sheet::Design& design, const FitSpec& spec,
                        const sheet::SweepProgress& progress) {
  if (spec.model_name.empty()) {
    throw expr::ExprError("surrogate: model name required");
  }
  if (spec.params.empty()) {
    throw expr::ExprError("surrogate: no parameters given");
  }
  const bool quadratic = spec.basis == "poly2" || spec.basis == "log";
  if (spec.basis != "poly1" && !quadratic) {
    throw expr::ExprError("surrogate: unknown basis '" + spec.basis +
                          "' — use poly1, poly2 or log");
  }
  if (!(spec.holdout_fraction > 0 && spec.holdout_fraction <= 0.5)) {
    throw expr::ExprError(
        "surrogate: holdout fraction must be in (0, 0.5]");
  }

  FitResult out;
  out.log_basis = spec.basis == "log";
  out.diagnostics.basis = spec.basis;
  out.diagnostics.seed = spec.seed;

  std::vector<std::string> names;
  for (const DistParam& p : spec.params) names.push_back(p.name);
  const std::vector<std::vector<double>> points =
      sample_points(spec.params, spec.samples, spec.seed);
  sheet::PointColumns cols =
      engine.play_points_columnar(design, names, points, progress);
  std::vector<double> y = std::move(cols.power_w);

  // Deterministic holdout split: every stride-th point.  The split must
  // not depend on thread count or sample order subtleties — index
  // arithmetic over the counter-RNG matrix is exactly that.
  const auto stride = static_cast<std::size_t>(
      std::llround(1.0 / spec.holdout_fraction));
  std::vector<std::size_t> train_ix;
  std::vector<std::size_t> hold_ix;
  for (std::size_t i = 0; i < points.size(); ++i) {
    (i % stride == stride - 1 ? hold_ix : train_ix).push_back(i);
  }

  // Basis layout: constant, then linear terms, then (quadratic bases)
  // z_j * z_k for j <= k.
  const std::size_t p = names.size();
  out.term_index.emplace_back(-1, -1);
  out.terms.emplace_back("1");
  const auto zname = [&](std::size_t j) {
    return out.log_basis ? "z(ln " + names[j] + ")" : "z(" + names[j] + ")";
  };
  for (std::size_t j = 0; j < p; ++j) {
    out.term_index.emplace_back(static_cast<int>(j), -1);
    out.terms.push_back(zname(j));
  }
  if (quadratic) {
    for (std::size_t j = 0; j < p; ++j) {
      for (std::size_t k = j; k < p; ++k) {
        out.term_index.emplace_back(static_cast<int>(j),
                                    static_cast<int>(k));
        out.terms.push_back(zname(j) + "*" + zname(k));
      }
    }
  }
  const std::size_t terms = out.term_index.size();
  if (train_ix.size() < terms || hold_ix.empty()) {
    throw expr::ExprError(
        "surrogate: " + std::to_string(spec.samples) + " samples is too "
        "few for a " + spec.basis + " fit over " + std::to_string(p) +
        " parameters (" + std::to_string(terms) + " terms plus holdout)");
  }

  // Standardization from the *training* split.  A degenerate feature
  // (choice of one value, zero-width uniform) keeps scale 1 so the
  // expression stays finite; the fit simply cannot use that direction.
  out.mean.assign(p, 0);
  out.scale.assign(p, 1);
  for (std::size_t j = 0; j < p; ++j) {
    double sum = 0;
    for (const std::size_t i : train_ix) {
      const double x = points[i][j];
      if (out.log_basis && !(x > 0)) {
        throw expr::ExprError(
            "surrogate: log basis needs strictly positive samples, but '" +
            names[j] + "' drew " + num17(x) +
            " — shift the distribution or use poly2");
      }
      sum += out.log_basis ? std::log(x) : x;
    }
    out.mean[j] = sum / static_cast<double>(train_ix.size());
    double var = 0;
    for (const std::size_t i : train_ix) {
      const double raw =
          out.log_basis ? std::log(points[i][j]) : points[i][j];
      var += (raw - out.mean[j]) * (raw - out.mean[j]);
    }
    const double sd = std::sqrt(var / static_cast<double>(train_ix.size()));
    out.scale[j] = sd > 0 ? sd : 1.0;
  }

  // Normal equations over the training split, tiny ridge for the
  // near-collinear cases the pivot check alone would let wobble.
  std::vector<std::vector<double>> ata(terms,
                                       std::vector<double>(terms, 0));
  std::vector<double> aty(terms, 0);
  for (const std::size_t i : train_ix) {
    const std::vector<double> z = features(out, points[i]);
    std::vector<double> phi(terms);
    for (std::size_t t = 0; t < terms; ++t) {
      phi[t] = term_value(out.term_index[t], z);
    }
    for (std::size_t r = 0; r < terms; ++r) {
      for (std::size_t c = r; c < terms; ++c) ata[r][c] += phi[r] * phi[c];
      aty[r] += phi[r] * y[i];
    }
  }
  for (std::size_t r = 0; r < terms; ++r) {
    ata[r][r] += kRidge;
    for (std::size_t c = 0; c < r; ++c) ata[r][c] = ata[c][r];
  }
  out.coefficients = solve(std::move(ata), std::move(aty));

  // Diagnostics: R² on the training split, worst relative error on the
  // holdout split the fit never saw.
  double y_mean = 0;
  for (const std::size_t i : train_ix) y_mean += y[i];
  y_mean /= static_cast<double>(train_ix.size());
  double ss_res = 0;
  double ss_tot = 0;
  for (const std::size_t i : train_ix) {
    const double pred = surrogate_predict(out, points[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  out.diagnostics.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  double worst = 0;
  for (const std::size_t i : hold_ix) {
    const double pred = surrogate_predict(out, points[i]);
    const double denom = std::max(std::abs(y[i]), 1e-30);
    worst = std::max(worst, std::abs(pred - y[i]) / denom);
  }
  out.diagnostics.max_rel_err = worst;
  out.diagnostics.train_count = train_ix.size();
  out.diagnostics.holdout_count = hold_ix.size();

  // Materialize as a user model.  The power_direct expression is the
  // surrogate verbatim — same standardization, same coefficients at
  // full double precision — so the library model and surrogate_predict
  // agree to the last bit of expression arithmetic.
  model::UserModelDefinition def;
  def.name = spec.model_name;
  def.category = model::Category::kSystem;
  std::vector<std::string> feat(p);
  for (std::size_t j = 0; j < p; ++j) {
    const std::string raw =
        out.log_basis ? "ln(" + names[j] + ")" : names[j];
    feat[j] = "((" + raw + " - " + num17(out.mean[j]) + ") / " +
              num17(out.scale[j]) + ")";
  }
  std::string body;
  for (std::size_t t = 0; t < terms; ++t) {
    if (t > 0) body += " + ";
    body += "(" + num17(out.coefficients[t]) + ")";
    const auto [j, k] = out.term_index[t];
    if (j >= 0) body += " * " + feat[static_cast<std::size_t>(j)];
    if (k >= 0) body += " * " + feat[static_cast<std::size_t>(k)];
  }
  def.power_direct = body;
  for (std::size_t j = 0; j < p; ++j) {
    model::ParamSpec ps;
    ps.name = names[j];
    ps.description = "surrogate input, trained on " +
                     spec.params[j].dist.source;
    ps.default_value = spec.params[j].dist.mean();
    def.params.push_back(std::move(ps));
  }
  // Single line on purpose: the store's quoted() escapes only quotes
  // and backslashes, so documentation must never embed a newline.
  std::ostringstream doc;
  doc << kDocPrefix << " power fit over";
  for (const std::string& name : names) doc << ' ' << name;
  doc << "; basis=" << spec.basis << " seed=" << spec.seed
      << " train=" << out.diagnostics.train_count
      << " holdout=" << out.diagnostics.holdout_count << std::setprecision(6)
      << " r2=" << out.diagnostics.r2
      << " max_rel_err=" << out.diagnostics.max_rel_err
      << " source_design=" << design.name();
  def.documentation = doc.str();
  out.definition = std::move(def);
  return out;
}

std::string fit_table(const FitResult& r) {
  std::ostringstream os;
  os << "surrogate fit: model '" << r.definition.name << "', basis "
     << r.diagnostics.basis << ", seed " << r.diagnostics.seed << "\n";
  os << "train/holdout\t" << r.diagnostics.train_count << "/"
     << r.diagnostics.holdout_count << "\n";
  os << std::setprecision(6);
  os << "r2\t" << r.diagnostics.r2 << "\n";
  os << "max rel err\t" << r.diagnostics.max_rel_err << "\n";
  os << std::setprecision(9);
  for (std::size_t t = 0; t < r.terms.size(); ++t) {
    os << r.terms[t] << "\t" << r.coefficients[t] << "\n";
  }
  return os.str();
}

std::string fit_csv(const FitResult& r) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "term,coefficient\n";
  for (std::size_t t = 0; t < r.terms.size(); ++t) {
    os << '"' << r.terms[t] << "\"," << r.coefficients[t] << '\n';
  }
  os << "\"r2\"," << r.diagnostics.r2 << '\n';
  os << "\"max_rel_err\"," << r.diagnostics.max_rel_err << '\n';
  return os.str();
}

}  // namespace powerplay::explore
