#include "explore/inverse.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "explore/pareto.hpp"
#include "units/units.hpp"

namespace powerplay::explore {

namespace {

/// Sequential metric evaluations during bisection reuse one bound
/// PlanInstance when the parameter is slot-addressable; otherwise each
/// evaluation goes through the engine's clone fallback.
class MetricEval {
 public:
  MetricEval(engine::EvalEngine& engine, const sheet::Design& design,
             const InverseSpec& spec)
      : engine_(&engine), design_(&design), spec_(&spec) {}

  double operator()(double x) {
    const std::vector<sheet::PlayResult> plays = engine_->play_points(
        *design_, {spec_->param}, {{x}});
    ++evaluations_;
    return metric_value(plays.front(), spec_->metric);
  }

  [[nodiscard]] std::size_t evaluations() const { return evaluations_; }
  void count(std::size_t n) { evaluations_ += n; }

 private:
  engine::EvalEngine* engine_;
  const sheet::Design* design_;
  const InverseSpec* spec_;
  std::size_t evaluations_ = 0;
};

std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << v;
  return os.str();
}

}  // namespace

InverseResult solve_inverse(engine::EvalEngine& engine,
                            const sheet::Design& design,
                            const InverseSpec& spec,
                            const sheet::SweepProgress& progress) {
  if (!(spec.lo < spec.hi)) {
    throw expr::ExprError("inverse: bracket requires lo < hi (got [" +
                          num(spec.lo) + ", " + num(spec.hi) + "])");
  }
  if (!is_metric(spec.metric)) {
    throw expr::ExprError("inverse: unknown metric '" + spec.metric +
                          "' — use power, area, energy or delay");
  }
  const std::size_t probes = std::max<std::size_t>(spec.probe_points, 3);
  // Progress accounting: the probe batch plus a generous bisection
  // allowance (a 2^-64 bracket shrink is beyond any tol_rel we accept).
  const std::size_t budget = probes + 64;
  std::size_t done = 0;
  const auto tick = [&](std::size_t n) {
    done = std::min(done + n, budget);
    if (progress) progress(done, budget);
  };

  // Monotonicity probe: equally spaced, endpoints included, evaluated
  // in parallel through the engine.
  std::vector<std::vector<double>> grid(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    grid[i] = {spec.lo + (spec.hi - spec.lo) * static_cast<double>(i) /
                             static_cast<double>(probes - 1)};
  }
  const std::vector<sheet::PlayResult> plays =
      engine.play_points(design, {spec.param}, grid);
  tick(probes);
  std::vector<double> f(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    f[i] = metric_value(plays[i], spec.metric);
  }

  bool non_decreasing = true;
  bool non_increasing = true;
  std::size_t bad_up = 0;
  std::size_t bad_down = 0;
  for (std::size_t i = 0; i + 1 < probes; ++i) {
    if (f[i + 1] < f[i]) {
      if (non_decreasing) bad_up = i;
      non_decreasing = false;
    }
    if (f[i + 1] > f[i]) {
      if (non_increasing) bad_down = i;
      non_increasing = false;
    }
  }
  if (!non_decreasing && !non_increasing) {
    throw expr::ExprError(
        "inverse: " + spec.metric + " is not monotone in '" + spec.param +
        "' over [" + num(spec.lo) + ", " + num(spec.hi) + "]: " +
        spec.metric + "(" + num(grid[bad_up][0]) + ")=" + num(f[bad_up]) +
        " falls to " + spec.metric + "(" + num(grid[bad_up + 1][0]) + ")=" +
        num(f[bad_up + 1]) + " but " + spec.metric + "(" +
        num(grid[bad_down][0]) + ")=" + num(f[bad_down]) + " rises to " +
        spec.metric + "(" + num(grid[bad_down + 1][0]) + ")=" +
        num(f[bad_down + 1]) + " — bisection has no single answer; sweep "
        "the bracket instead");
  }

  InverseResult out;
  out.increasing = non_decreasing;

  MetricEval eval(engine, design, spec);
  eval.count(probes);
  const auto ok = [&](double fx) {
    return spec.upper_bound ? fx <= spec.limit : fx >= spec.limit;
  };

  const bool ok_lo = ok(f.front());
  const bool ok_hi = ok(f.back());
  if (!ok_lo && !ok_hi) {
    // Monotone metric, both endpoints infeasible: the whole bracket is.
    out.feasible = false;
    if (progress) progress(budget, budget);
    return out;
  }
  out.feasible = true;

  // The feasible set of a monotone metric under a one-sided constraint
  // is a sub-interval anchored at a feasible endpoint.  If the endpoint
  // we are optimizing toward is feasible, it is the answer; otherwise
  // bisect the feasibility boundary keeping `a` feasible.
  if (spec.maximize && ok_hi) {
    out.param_value = spec.hi;
    out.metric_value = f.back();
    out.evaluations = eval.evaluations();
    if (progress) progress(budget, budget);
    return out;
  }
  if (!spec.maximize && ok_lo) {
    out.param_value = spec.lo;
    out.metric_value = f.front();
    out.evaluations = eval.evaluations();
    if (progress) progress(budget, budget);
    return out;
  }

  double a = spec.maximize ? spec.lo : spec.hi;      // feasible end
  double b = spec.maximize ? spec.hi : spec.lo;      // infeasible end
  double fa = spec.maximize ? f.front() : f.back();
  const double span = spec.hi - spec.lo;
  std::size_t iters = 0;
  while (iters < spec.max_iters &&
         std::abs(b - a) >
             spec.tol_rel * std::max({std::abs(a), std::abs(b), span})) {
    const double mid = a + (b - a) / 2;
    if (mid == a || mid == b) break;  // double resolution exhausted
    const double fm = eval(mid);
    ++iters;
    tick(1);
    if (ok(fm)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
  }
  out.param_value = a;
  out.metric_value = fa;
  out.iterations = iters;
  out.evaluations = eval.evaluations();
  if (progress) progress(budget, budget);
  return out;
}

std::string inverse_table(const InverseSpec& spec, const InverseResult& r) {
  std::ostringstream os;
  os << "inverse query: " << (spec.maximize ? "largest " : "smallest ")
     << spec.param << " with " << spec.metric
     << (spec.upper_bound ? " <= " : " >= ")
     << units::format_si(spec.limit, spec.metric == "power" ? "W" : "")
     << " over [" << num(spec.lo) << ", " << num(spec.hi) << "]\n";
  if (!r.feasible) {
    os << "result\tinfeasible (no point in the bracket meets the "
          "constraint)\n";
    return os.str();
  }
  os << spec.param << "\t" << std::setprecision(12) << r.param_value << "\n";
  os << spec.metric << "\t" << r.metric_value << "\n";
  os << "metric direction\t"
     << (r.increasing ? "non-decreasing" : "non-increasing") << "\n";
  os << "evaluations\t" << r.evaluations << " (" << r.iterations
     << " bisection steps)\n";
  return os.str();
}

std::string inverse_csv(const InverseSpec& spec, const InverseResult& r) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "param,feasible," << spec.param << ',' << spec.metric
     << ",evaluations\n";
  os << spec.param << ',' << (r.feasible ? 1 : 0) << ',' << r.param_value
     << ',' << r.metric_value << ',' << r.evaluations << '\n';
  return os.str();
}

}  // namespace powerplay::explore
