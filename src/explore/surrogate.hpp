// surrogate.hpp — fitted surrogate models over compiled-plan sweeps.
//
// A compiled plan is already fast; a surrogate is faster still and —
// more importantly — *portable*: the fit is materialized as an ordinary
// UserModelDefinition whose power_direct expression is the fitted
// polynomial, so it rides every existing rail for free (library store,
// journal replay, follower replication, the /model and /doc pages, use
// as a sheet row).  The fit is least squares over a standardized
// polynomial or log basis, trained on deterministic Monte Carlo points
// (dist.hpp counters), with diagnostics (R² on the training split, max
// relative error on a deterministic holdout split) computed at fit time
// and carried in the model's documentation line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "explore/dist.hpp"
#include "model/user_model.hpp"

namespace powerplay::explore {

struct FitSpec {
  std::string model_name;         ///< library name for the fitted model
  std::vector<DistParam> params;  ///< training ranges per input
  std::size_t samples = 256;      ///< total points (train + holdout)
  std::uint64_t seed = 1;
  /// poly1: affine.  poly2: quadratic with cross terms.  log: poly2
  /// over ln(x) — requires strictly positive samples for every input.
  std::string basis = "poly2";
  /// Fraction held out for the max-relative-error check; the split is
  /// deterministic (every k-th point), not random.
  double holdout_fraction = 0.25;
};

struct FitDiagnostics {
  double r2 = 0;           ///< coefficient of determination, training split
  double max_rel_err = 0;  ///< worst |pred - exact| / |exact|, holdout split
  std::size_t train_count = 0;
  std::size_t holdout_count = 0;
  std::string basis;
  std::uint64_t seed = 1;
};

struct FitResult {
  model::UserModelDefinition definition;  ///< ready for LibraryStore::save_model
  FitDiagnostics diagnostics;
  std::vector<std::string> terms;   ///< human-readable basis terms
  std::vector<double> coefficients; ///< same order as `terms`

  // Fit structure, recorded so surrogate_predict and the generated
  // expression share one definition of the model: per-input
  // standardization plus each term's feature indices ((-1,-1) constant,
  // (j,-1) linear, (j,k) product).
  std::vector<double> mean;
  std::vector<double> scale;
  bool log_basis = false;
  std::vector<std::pair<int, int>> term_index;
};

/// Sample the design, solve the least-squares system (normal equations
/// with a tiny ridge), and package the fit as a user model whose
/// power_direct expression reproduces the surrogate exactly.  Throws
/// expr::ExprError on an unknown basis, too few samples for the basis
/// size, non-positive samples under the log basis, or unknown
/// parameters (via the engine's all-names-at-once validation).
[[nodiscard]] FitResult fit_surrogate(
    engine::EvalEngine& engine, const sheet::Design& design,
    const FitSpec& spec, const sheet::SweepProgress& progress = {});

/// Evaluate a fitted surrogate at one point (params in spec order).
/// This is the same arithmetic the generated expression performs —
/// exposed so tests and benches can pin the two against each other.
[[nodiscard]] double surrogate_predict(const FitResult& fit,
                                       const std::vector<double>& point);

/// True when a model's documentation marks it as a fitted surrogate
/// (the "[surrogate]" prefix written by fit_surrogate).
[[nodiscard]] bool is_surrogate_doc(const std::string& documentation);

[[nodiscard]] std::string fit_table(const FitResult& r);
[[nodiscard]] std::string fit_csv(const FitResult& r);

}  // namespace powerplay::explore
