// pareto.hpp — Pareto-frontier extraction over user-chosen objectives.
//
// A sweep answers "what is the power at each point"; a Pareto search
// answers "which points are worth looking at": evaluate a grid (the
// cartesian product of explicit axes) or a sampled cloud (dist.hpp)
// and keep the non-dominated set under objectives like minimize power,
// minimize area, maximize pixel_rate.  Built-in metric objectives
// (power/area/energy/delay, read off each point's PlayResult) default
// to minimize; parameter objectives (throughput knobs) default to
// maximize; both accept explicit `min:`/`max:` prefixes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "explore/dist.hpp"

namespace powerplay::explore {

struct Objective {
  std::string name;      ///< "power", "area", "energy", "delay", or a param
  bool maximize = false;
};

/// True for the built-in PlayResult metrics: power/area/energy/delay.
[[nodiscard]] bool is_metric(const std::string& name);

/// Read a built-in metric off a Play (SI units).  `name` must satisfy
/// is_metric().
[[nodiscard]] double metric_value(const sheet::PlayResult& play,
                                  const std::string& name);

/// Columnar counterpart: read metric `name` of point `i` from batch
/// result columns (sheet/batch.hpp).  `name` must satisfy is_metric().
[[nodiscard]] double metric_column(const sheet::PointColumns& cols,
                                   std::size_t i, const std::string& name);

/// Parse "power", "min:area", "max:pixel_rate".  `param_names` decides
/// the default direction (parameters maximize, metrics minimize) and
/// validates parameter objectives; unknown names throw.
[[nodiscard]] Objective parse_objective(
    const std::string& text, const std::vector<std::string>& param_names);

/// One explicit grid axis.
struct ParetoAxis {
  std::string param;
  std::vector<double> values;
};

struct ParetoSpec {
  /// Grid mode: cartesian product of these axes (capped — see
  /// kMaxPoints).  Mutually exclusive with sampling mode.
  std::vector<ParetoAxis> axes;
  /// Sampling mode: `samples` draws from these distributions.
  std::vector<DistParam> dists;
  std::size_t samples = 0;
  std::uint64_t seed = 1;
  std::vector<Objective> objectives;  ///< at least one

  static constexpr std::size_t kMaxPoints = 65536;
};

struct ParetoResult {
  std::vector<std::string> param_names;
  std::vector<Objective> objectives;
  std::vector<std::vector<double>> points;           ///< [i][param]
  std::vector<std::vector<double>> objective_values; ///< [i][objective]
  std::vector<double> power_w;                       ///< always recorded
  std::vector<double> area_m2;
  std::vector<std::size_t> frontier;  ///< non-dominated indices, ascending
};

/// Dominance filter over raw objective rows (exposed for direct unit
/// testing): returns the indices of the non-dominated rows, ascending.
/// Row A dominates row B when A is no worse in every column and
/// strictly better in at least one (directions per `maximize`).
/// Duplicate rows never dominate each other, so ties all survive.
[[nodiscard]] std::vector<std::size_t> pareto_frontier(
    const std::vector<std::vector<double>>& rows,
    const std::vector<bool>& maximize);

[[nodiscard]] ParetoResult run_pareto(
    engine::EvalEngine& engine, const sheet::Design& design,
    const ParetoSpec& spec, const sheet::SweepProgress& progress = {});

/// Frontier-only table for the /job view.
[[nodiscard]] std::string pareto_table(const ParetoResult& r);

/// Every evaluated point with a 0/1 `frontier` column.
[[nodiscard]] std::string pareto_csv(const ParetoResult& r);

/// Frontier points as a JSON array of objects.
[[nodiscard]] std::string pareto_json(const ParetoResult& r);

}  // namespace powerplay::explore
