// mc.hpp — Monte Carlo analysis over uncertain design parameters.
//
// "What is the power at the nominal operating point?" becomes "what is
// the power *distribution* when vdd varies ±5% and the pixel rate is
// one of three standards?"  A Monte Carlo run samples every listed
// parameter from its distribution (dist.hpp's counter RNG — point i is
// the same point at any thread count), Plays each sample through the
// compiled-plan engine, and reduces the results to mean/stddev,
// percentiles and, when a power budget is given, the exceedance
// fraction P(total power > budget).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "explore/dist.hpp"

namespace powerplay::explore {

struct McSpec {
  std::vector<DistParam> params;  ///< at least one
  std::size_t samples = 1000;
  std::uint64_t seed = 1;
  /// > 0: also report the fraction of samples whose total power exceeds
  /// this budget [W].
  double budget_w = 0;
};

/// The percentile levels every MC report carries.
inline constexpr double kPercentiles[] = {0, 1, 5, 10, 25, 50,
                                          75, 90, 95, 99, 100};

struct McResult {
  std::vector<std::string> param_names;
  std::vector<std::vector<double>> points;  ///< [sample][param]
  std::vector<double> power_w;              ///< per sample, sample order
  std::vector<double> energy_j;             ///< per sample
  std::size_t samples = 0;
  std::uint64_t seed = 0;

  double mean_w = 0;
  double stddev_w = 0;  ///< population standard deviation
  std::vector<std::pair<double, double>> percentiles_w;  ///< (level, W)

  double budget_w = 0;
  double exceed_fraction = 0;  ///< P(power > budget); 0 when no budget
};

/// Percentile of an ascending-sorted sample by linear interpolation
/// between closest ranks (p in [0, 100]; p=0 is the minimum, p=100 the
/// maximum, n=1 returns the single value).  Throws expr::ExprError on
/// an empty sample or p outside [0, 100].
[[nodiscard]] double percentile(const std::vector<double>& sorted, double p);

/// Run the study.  Validates every parameter up front (all unknown
/// names in one error), evaluates through `engine` (parallel, memoized,
/// bit-identical at any thread count), then reduces in sample order.
[[nodiscard]] McResult run_monte_carlo(
    engine::EvalEngine& engine, const sheet::Design& design,
    const McSpec& spec, const sheet::SweepProgress& progress = {});

/// Human-readable summary (the /job table view).
[[nodiscard]] std::string mc_table(const McResult& r);

/// Machine form: one line per sample,
/// `<param>...,total_power_w,energy_per_op_j`.
[[nodiscard]] std::string mc_csv(const McResult& r);

/// Summary statistics as one JSON object (the /job?format=json payload).
[[nodiscard]] std::string mc_json(const McResult& r);

}  // namespace powerplay::explore
