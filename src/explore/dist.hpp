// dist.hpp — parameter distributions and the deterministic counter RNG.
//
// Monte Carlo exploration attaches a distribution to any design
// parameter using the spreadsheet's own expression syntax:
//
//   uniform(a, b)      — uniform on [a, b]
//   normal(mu, sigma)  — Gaussian (Box-Muller over two counter draws)
//   choice(v1, v2, …)  — uniform pick from an explicit value list
//
// Arguments may be constant expressions ("uniform(1.5*0.9, 1.5*1.1)").
//
// Sampling is *counter-based*: draw (seed, point, draw_index) is a pure
// hash, not a stateful generator, so sample i of an N-point study is
// the same double no matter how points are chunked across worker
// threads, how many threads run, or in what order chunks finish.  This
// is the determinism guarantee the bit-identical MC tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace powerplay::explore {

enum class DistKind { kUniform, kNormal, kChoice };

struct Distribution {
  DistKind kind = DistKind::kUniform;
  double a = 0;  ///< uniform low / normal mu
  double b = 0;  ///< uniform high / normal sigma
  std::vector<double> choices;
  std::string source;  ///< canonical text, for tables and descriptions

  /// Expected value (choice: arithmetic mean of the list) — the default
  /// operating point a fitted surrogate advertises for the parameter.
  [[nodiscard]] double mean() const;
};

/// Parse distribution syntax.  Throws expr::ExprError with the accepted
/// forms spelled out on anything else (wrong call name, non-constant
/// arguments, uniform(hi, lo), negative sigma, empty choice list).
Distribution parse_distribution(const std::string& source);

/// SplitMix64 finalizer: the bijective avalanche at the heart of the
/// counter RNG.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Uniform double in [0, 1) for counter (seed, point, draw).
[[nodiscard]] double u01(std::uint64_t seed, std::uint64_t point,
                         std::uint64_t draw);

/// One sample of `d` for point index `point`, parameter index
/// `param_index` (each parameter consumes two draw counters so a normal
/// has both Box-Muller uniforms to itself).
[[nodiscard]] double sample(const Distribution& d, std::uint64_t seed,
                            std::uint64_t point, std::size_t param_index);

/// One named parameter under a distribution — the unit every
/// exploration spec is built from.
struct DistParam {
  std::string name;
  Distribution dist;
};

/// Parse a semicolon-separated list of `name=distribution` entries,
/// e.g. "vdd=uniform(1.35,1.65);f=choice(1e6,2e6)" — the wire/CLI form
/// shared by POST /design/explore and `ppcli explore`.
[[nodiscard]] std::vector<DistParam> parse_dist_params(
    const std::string& text);

/// Deterministic sample matrix: row i is point i, column j is
/// params[j] sampled at (seed, i, j).
[[nodiscard]] std::vector<std::vector<double>> sample_points(
    const std::vector<DistParam>& params, std::size_t samples,
    std::uint64_t seed);

}  // namespace powerplay::explore
