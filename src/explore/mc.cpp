#include "explore/mc.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "units/units.hpp"

namespace powerplay::explore {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw expr::ExprError("percentile: empty sample");
  }
  if (!(p >= 0 && p <= 100)) {
    throw expr::ExprError("percentile: level must be in [0, 100]");
  }
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

McResult run_monte_carlo(engine::EvalEngine& engine,
                         const sheet::Design& design, const McSpec& spec,
                         const sheet::SweepProgress& progress) {
  if (spec.params.empty()) {
    throw expr::ExprError("monte carlo: no parameters given");
  }
  if (spec.samples == 0) {
    throw expr::ExprError("monte carlo: sample count must be positive");
  }
  McResult out;
  out.samples = spec.samples;
  out.seed = spec.seed;
  out.budget_w = spec.budget_w;
  for (const DistParam& p : spec.params) out.param_names.push_back(p.name);

  out.points = sample_points(spec.params, spec.samples, spec.seed);
  // Columnar batch evaluation: points partition into lane blocks by
  // index, so the metric columns — like the counter-based sample
  // matrix feeding them — are bit-identical at any thread count.
  sheet::PointColumns cols = engine.play_points_columnar(
      design, out.param_names, out.points, progress);
  out.power_w = std::move(cols.power_w);
  out.energy_j = std::move(cols.energy_j);

  // Reductions run over the sample-ordered vector (and a sorted copy),
  // never in completion order, so the summary is as thread-count-proof
  // as the samples themselves.
  double sum = 0;
  for (const double w : out.power_w) sum += w;
  const auto n = static_cast<double>(out.power_w.size());
  out.mean_w = sum / n;
  double var = 0;
  for (const double w : out.power_w) {
    var += (w - out.mean_w) * (w - out.mean_w);
  }
  out.stddev_w = std::sqrt(var / n);

  std::vector<double> sorted = out.power_w;
  std::sort(sorted.begin(), sorted.end());
  for (const double level : kPercentiles) {
    out.percentiles_w.emplace_back(level, percentile(sorted, level));
  }
  if (spec.budget_w > 0) {
    std::size_t over = 0;
    for (const double w : out.power_w) {
      if (w > spec.budget_w) ++over;
    }
    out.exceed_fraction = static_cast<double>(over) / n;
  }
  return out;
}

std::string mc_table(const McResult& r) {
  std::ostringstream os;
  os << "monte carlo: " << r.samples << " samples, seed " << r.seed << "\n";
  os << "parameters:";
  for (const std::string& name : r.param_names) os << ' ' << name;
  os << "\n";
  os << "mean power\t" << units::format_si(r.mean_w, "W") << "\n";
  os << "stddev\t" << units::format_si(r.stddev_w, "W") << "\n";
  for (const auto& [level, watts] : r.percentiles_w) {
    os << "p" << level << "\t" << units::format_si(watts, "W") << "\n";
  }
  if (r.budget_w > 0) {
    os << "budget\t" << units::format_si(r.budget_w, "W") << "\n";
    os << "exceedance\t" << std::setprecision(6) << r.exceed_fraction * 100
       << "%\n";
  }
  return os.str();
}

std::string mc_csv(const McResult& r) {
  std::ostringstream os;
  os << std::setprecision(9);
  for (const std::string& name : r.param_names) os << name << ',';
  os << "total_power_w,energy_per_op_j\n";
  for (std::size_t i = 0; i < r.power_w.size(); ++i) {
    for (const double v : r.points[i]) os << v << ',';
    os << r.power_w[i] << ',' << r.energy_j[i] << '\n';
  }
  return os.str();
}

std::string mc_json(const McResult& r) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"samples\":" << r.samples << ",\"seed\":" << r.seed
     << ",\"mean_w\":" << r.mean_w << ",\"stddev_w\":" << r.stddev_w
     << ",\"percentiles_w\":{";
  bool first = true;
  for (const auto& [level, watts] : r.percentiles_w) {
    if (!first) os << ",";
    first = false;
    os << "\"p" << level << "\":" << watts;
  }
  os << "}";
  if (r.budget_w > 0) {
    os << ",\"budget_w\":" << r.budget_w
       << ",\"exceed_fraction\":" << r.exceed_fraction;
  }
  os << "}";
  return os.str();
}

}  // namespace powerplay::explore
