#include "engine/job.hpp"

#include <utility>

namespace powerplay::engine {

std::string to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

JobManager::JobManager(std::size_t runner_count, std::size_t retained_jobs)
    : retained_jobs_(retained_jobs == 0 ? 1 : retained_jobs) {
  if (runner_count == 0) runner_count = 1;
  runners_.reserve(runner_count);
  for (std::size_t i = 0; i < runner_count; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

JobManager::~JobManager() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    pending_.clear();  // queued-but-unstarted jobs die with the process
  }
  job_ready_.notify_all();
  for (std::thread& t : runners_) t.join();
}

std::uint64_t JobManager::submit(std::string user, std::string description,
                                 Work work) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    id = next_id_++;
    Record record;
    record.snapshot.id = id;
    record.snapshot.user = std::move(user);
    record.snapshot.description = std::move(description);
    record.snapshot.status = JobStatus::kQueued;
    record.work = std::move(work);
    jobs_.emplace(id, std::move(record));
    pending_.push_back(id);
    trim_finished_locked();
  }
  job_ready_.notify_one();
  return id;
}

std::optional<JobSnapshot> JobManager::get(std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.snapshot;
}

std::vector<JobSnapshot> JobManager::list(const std::string& user) const {
  std::lock_guard lock(mutex_);
  std::vector<JobSnapshot> out;
  for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
    if (it->second.snapshot.user == user) out.push_back(it->second.snapshot);
  }
  return out;
}

JobStats JobManager::stats() const {
  std::lock_guard lock(mutex_);
  JobStats s;
  for (const auto& [id, record] : jobs_) {
    switch (record.snapshot.status) {
      case JobStatus::kQueued:
        ++s.queued;
        break;
      case JobStatus::kRunning:
        ++s.running;
        break;
      case JobStatus::kDone:
        ++s.done;
        break;
      case JobStatus::kFailed:
        ++s.failed;
        break;
    }
  }
  return s;
}

void JobManager::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_.empty() && active_ == 0; });
}

void JobManager::runner_loop() {
  for (;;) {
    std::uint64_t id = 0;
    Work work;
    {
      std::unique_lock lock(mutex_);
      job_ready_.wait(lock,
                      [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      id = pending_.front();
      pending_.pop_front();
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;  // trimmed while queued
      it->second.snapshot.status = JobStatus::kRunning;
      work = std::move(it->second.work);
      ++active_;
    }

    const Progress progress = [this, id](std::size_t done,
                                         std::size_t total) {
      std::lock_guard lock(mutex_);
      auto it = jobs_.find(id);
      if (it == jobs_.end()) return;
      it->second.snapshot.done = done;
      it->second.snapshot.total = total;
    };

    JobResult result;
    std::string error;
    bool failed = false;
    try {
      result = work(progress);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown error";
    }

    {
      std::lock_guard lock(mutex_);
      auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        JobSnapshot& snap = it->second.snapshot;
        if (failed) {
          snap.status = JobStatus::kFailed;
          snap.error = std::move(error);
        } else {
          snap.status = JobStatus::kDone;
          snap.result = std::move(result);
          if (snap.total == 0) snap.total = snap.done;
        }
      }
      --active_;
      trim_finished_locked();
      if (pending_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void JobManager::trim_finished_locked() {
  // The bound applies to finished records only: queued/running jobs are
  // never evicted, and a deep backlog must not push out fresh results
  // before their poller has fetched them.
  std::size_t finished = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.snapshot.status == JobStatus::kDone ||
        record.snapshot.status == JobStatus::kFailed) {
      ++finished;
    }
  }
  for (auto it = jobs_.begin();
       finished > retained_jobs_ && it != jobs_.end();) {
    if (it->second.snapshot.status == JobStatus::kDone ||
        it->second.snapshot.status == JobStatus::kFailed) {
      it = jobs_.erase(it);  // std::map is id-ordered: oldest first
      --finished;
    } else {
      ++it;
    }
  }
}

}  // namespace powerplay::engine
