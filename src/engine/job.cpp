#include "engine/job.hpp"

#include <algorithm>
#include <utility>

namespace powerplay::engine {

std::string to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

bool is_finished(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kCancelled;
}

}  // namespace

JobManager::JobManager(JobOptions options) : options_(options) {
  if (options_.runner_count == 0) options_.runner_count = 1;
  if (options_.retained_jobs == 0) options_.retained_jobs = 1;
  runners_.reserve(options_.runner_count);
  for (std::size_t i = 0; i < options_.runner_count; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

JobManager::JobManager(std::size_t runner_count, std::size_t retained_jobs)
    : JobManager(JobOptions{runner_count, retained_jobs,
                            std::chrono::milliseconds{0}}) {}

JobManager::~JobManager() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    pending_.clear();  // queued-but-unstarted jobs die with the process
    for (auto& [id, record] : jobs_) {
      if (record.cancel) record.cancel->store(true);
    }
  }
  job_ready_.notify_all();
  for (std::thread& t : runners_) t.join();
}

std::uint64_t JobManager::submit(std::string user, std::string description,
                                 Work work) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    id = next_id_++;
    Record record;
    record.snapshot.id = id;
    record.snapshot.user = std::move(user);
    record.snapshot.description = std::move(description);
    record.snapshot.status = JobStatus::kQueued;
    record.work = std::move(work);
    record.cancel = std::make_shared<std::atomic<bool>>(false);
    auto [it, inserted] = jobs_.emplace(id, std::move(record));
    if (draining_) {
      cancel_queued_locked(it->second, "cancelled: server shutting down");
    } else {
      pending_.push_back(id);
    }
    trim_finished_locked();
  }
  job_ready_.notify_one();
  return id;
}

std::optional<JobSnapshot> JobManager::get(std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.snapshot;
}

std::vector<JobSnapshot> JobManager::list(const std::string& user) const {
  std::lock_guard lock(mutex_);
  std::vector<JobSnapshot> out;
  for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
    if (it->second.snapshot.user == user) out.push_back(it->second.snapshot);
  }
  return out;
}

void JobManager::cancel_queued_locked(Record& record, const char* reason) {
  record.snapshot.status = JobStatus::kCancelled;
  record.snapshot.error = reason;
  record.work = nullptr;  // release any captured state now
  ++cancelled_total_;
}

CancelOutcome JobManager::cancel(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return CancelOutcome::kNoSuchJob;
  JobSnapshot& snap = it->second.snapshot;
  switch (snap.status) {
    case JobStatus::kQueued: {
      auto pending = std::find(pending_.begin(), pending_.end(), id);
      if (pending != pending_.end()) pending_.erase(pending);
      cancel_queued_locked(it->second, "cancelled before start");
      trim_finished_locked();
      if (pending_.empty() && active_ == 0) idle_.notify_all();
      return CancelOutcome::kCancelled;
    }
    case JobStatus::kRunning:
      it->second.cancel->store(true);
      return CancelOutcome::kRequested;
    case JobStatus::kDone:
    case JobStatus::kFailed:
    case JobStatus::kCancelled:
      break;
  }
  return CancelOutcome::kAlreadyFinished;
}

JobStats JobManager::stats() const {
  std::lock_guard lock(mutex_);
  JobStats s;
  for (const auto& [id, record] : jobs_) {
    switch (record.snapshot.status) {
      case JobStatus::kQueued:
        ++s.queued;
        break;
      case JobStatus::kRunning:
        ++s.running;
        break;
      case JobStatus::kDone:
        ++s.done;
        break;
      case JobStatus::kFailed:
        ++s.failed;
        break;
      case JobStatus::kCancelled:
        ++s.cancelled;
        break;
    }
  }
  s.cancelled_total = cancelled_total_;
  s.deadline_expired_total = deadline_total_;
  return s;
}

void JobManager::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_.empty() && active_ == 0; });
}

void JobManager::drain() {
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
    for (std::uint64_t id : pending_) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      cancel_queued_locked(it->second, "cancelled: server shutting down");
    }
    pending_.clear();
    for (auto& [id, record] : jobs_) {
      if (record.snapshot.status == JobStatus::kRunning) {
        record.cancel->store(true);
      }
    }
    trim_finished_locked();
  }
  wait_idle();
}

void JobManager::runner_loop() {
  for (;;) {
    std::uint64_t id = 0;
    Work work;
    std::shared_ptr<std::atomic<bool>> cancel;
    {
      std::unique_lock lock(mutex_);
      job_ready_.wait(lock,
                      [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      id = pending_.front();
      pending_.pop_front();
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;  // trimmed while queued
      it->second.snapshot.status = JobStatus::kRunning;
      work = std::move(it->second.work);
      cancel = it->second.cancel;
      ++active_;
    }

    const auto started = std::chrono::steady_clock::now();
    const auto deadline = options_.deadline;
    const Progress progress = [this, id, cancel, started,
                               deadline](std::size_t done,
                                         std::size_t total) {
      {
        std::lock_guard lock(mutex_);
        auto it = jobs_.find(id);
        if (it != jobs_.end()) {
          it->second.snapshot.done = done;
          it->second.snapshot.total = total;
        }
      }
      if (cancel->load()) throw JobCancelled();
      if (deadline.count() > 0 &&
          std::chrono::steady_clock::now() - started >= deadline) {
        throw JobDeadlineExceeded();
      }
    };

    enum class Outcome { kOk, kCancelled, kDeadline, kError };
    Outcome outcome = Outcome::kOk;
    JobResult result;
    std::string error;
    try {
      result = work(progress);
      // A cancel that raced the final point still wins: the client
      // asked for the job to stop, so don't hand back a result.
      if (cancel->load()) {
        outcome = Outcome::kCancelled;
        error = JobCancelled().what();
      }
    } catch (const JobCancelled& e) {
      outcome = Outcome::kCancelled;
      error = e.what();
    } catch (const JobDeadlineExceeded& e) {
      outcome = Outcome::kDeadline;
      error = e.what();
    } catch (const std::exception& e) {
      outcome = Outcome::kError;
      error = e.what();
    } catch (...) {
      outcome = Outcome::kError;
      error = "unknown error";
    }

    {
      std::lock_guard lock(mutex_);
      auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        JobSnapshot& snap = it->second.snapshot;
        switch (outcome) {
          case Outcome::kOk:
            snap.status = JobStatus::kDone;
            snap.result = std::move(result);
            if (snap.total == 0) snap.total = snap.done;
            break;
          case Outcome::kCancelled:
            snap.status = JobStatus::kCancelled;
            snap.error = std::move(error);
            break;
          case Outcome::kDeadline:
            snap.status = JobStatus::kFailed;
            snap.error = std::move(error);
            break;
          case Outcome::kError:
            snap.status = JobStatus::kFailed;
            snap.error = std::move(error);
            break;
        }
      }
      if (outcome == Outcome::kCancelled) ++cancelled_total_;
      if (outcome == Outcome::kDeadline) ++deadline_total_;
      --active_;
      trim_finished_locked();
      if (pending_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void JobManager::trim_finished_locked() {
  // The bound applies to finished records only: queued/running jobs are
  // never evicted, and a deep backlog must not push out fresh results
  // before their poller has fetched them.
  std::size_t finished = 0;
  for (const auto& [id, record] : jobs_) {
    if (is_finished(record.snapshot.status)) ++finished;
  }
  for (auto it = jobs_.begin();
       finished > options_.retained_jobs && it != jobs_.end();) {
    if (is_finished(it->second.snapshot.status)) {
      it = jobs_.erase(it);  // std::map is id-ordered: oldest first
      --finished;
    } else {
      ++it;
    }
  }
}

}  // namespace powerplay::engine
