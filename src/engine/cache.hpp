// cache.hpp — thread-safe LRU maps keyed by design fingerprint.
//
// Re-Playing an unchanged design — a page reload, a revisited sweep
// point, two users opening the same shared design — is the hottest
// redundant work in the web loop.  LruCache is a thread-safe LRU map
// from content fingerprint (engine/fingerprint.hpp) to an immutable,
// shared value; the engine keeps two instances: PlayCache (fingerprint
// → PlayResult) and a plan cache (structural fingerprint → EvalPlan,
// aliased in engine/engine.hpp).  Invalidation is free: any edit
// changes the fingerprint, so stale entries are simply never looked up
// again and age out of the LRU tail (docs/engine.md spells out the
// rules).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "sheet/design.hpp"

namespace powerplay::engine {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

template <typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {
    // Pre-size the index so a burst of inserts (a cold sweep filling the
    // cache) never pays an incremental rehash; clear() keeps the buckets.
    index_.reserve(std::min<std::size_t>(capacity_, 1024));
  }

  /// Lookup; promotes the entry to most-recently-used.  Counts a hit or
  /// a miss.  Returns nullptr on miss.
  [[nodiscard]] std::shared_ptr<const V> find(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  /// Insert (or refresh) an entry, evicting the least-recently-used one
  /// when over capacity.
  void insert(std::uint64_t key, std::shared_ptr<const V> value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
  }

  [[nodiscard]] CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return CacheStats{hits_, misses_, evictions_, lru_.size(), capacity_};
  }

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const V>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Memoized Play results, keyed by content fingerprint.
using PlayCache = LruCache<sheet::PlayResult>;

}  // namespace powerplay::engine
