// cache.hpp — memoized Play results, keyed by design fingerprint.
//
// Re-Playing an unchanged design — a page reload, a revisited sweep
// point, two users opening the same shared design — is the hottest
// redundant work in the web loop.  This is a thread-safe LRU map from
// content fingerprint (engine/fingerprint.hpp) to an immutable
// PlayResult.  Invalidation is free: any edit changes the fingerprint,
// so stale entries are simply never looked up again and age out of the
// LRU tail (docs/engine.md spells out the rules).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sheet/design.hpp"

namespace powerplay::engine {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

class PlayCache {
 public:
  explicit PlayCache(std::size_t capacity = 4096);

  /// Lookup; promotes the entry to most-recently-used.  Counts a hit or
  /// a miss.  Returns nullptr on miss.
  [[nodiscard]] std::shared_ptr<const sheet::PlayResult> find(
      std::uint64_t key);

  /// Insert (or refresh) an entry, evicting the least-recently-used one
  /// when over capacity.
  void insert(std::uint64_t key,
              std::shared_ptr<const sheet::PlayResult> value);

  void clear();

  [[nodiscard]] CacheStats stats() const;

 private:
  using Entry = std::pair<std::uint64_t,
                          std::shared_ptr<const sheet::PlayResult>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace powerplay::engine
