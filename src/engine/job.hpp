// job.hpp — asynchronous job manager for long-running evaluations.
//
// A sweep over a big grid is too slow to answer inline on a mid-90s
// modem — and too useful to serialize behind one request.  The web app
// enqueues the work here and answers immediately with a job id; the
// client polls /job?id= for progress and fetches the grid (table or
// CSV) when done.
//
// Jobs are drained by their own small runner-thread pool, deliberately
// separate from the point Executor: a job *waits* on the points it fans
// out, so running jobs on the same pool that executes their points
// could deadlock once every thread held a waiting job.
//
// Lifecycle hardening: every job can be cancelled (POST /job/cancel)
// and is subject to an optional wall-clock deadline.  Both are
// cooperative — the Progress callback handed to the work function
// throws JobCancelled / JobDeadlineExceeded, so a sweep stops within
// one sweep-point granularity and its runner is freed.  drain() is the
// graceful-shutdown path: stop admitting work, cancel everything, wait.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace powerplay::engine {

enum class JobStatus { kQueued, kRunning, kDone, kFailed, kCancelled };

std::string to_string(JobStatus status);

/// Thrown (out of the Progress callback) inside a job whose cancel flag
/// was set; the runner marks the job kCancelled.
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled() : std::runtime_error("job cancelled") {}
};

/// Thrown inside a job that outran its wall-clock deadline; the runner
/// marks the job kFailed with this message.
class JobDeadlineExceeded : public std::runtime_error {
 public:
  JobDeadlineExceeded() : std::runtime_error("deadline exceeded") {}
};

/// What cancel() found and did.
enum class CancelOutcome {
  kNoSuchJob,
  kAlreadyFinished,  ///< done/failed/cancelled: nothing to do
  kCancelled,        ///< was queued; now terminally cancelled
  kRequested,        ///< running; will stop at its next progress point
};

/// What a finished job hands back: a human-readable table and a
/// machine-readable CSV of the same data.
struct JobResult {
  std::string table;
  std::string csv;
  /// Optional machine-readable payload (e.g. a Pareto frontier); served
  /// by GET /job?format=json when non-empty.
  std::string json;
};

/// Immutable copy of a job's state at one poll.
struct JobSnapshot {
  std::uint64_t id = 0;
  std::string user;
  std::string description;
  JobStatus status = JobStatus::kQueued;
  std::size_t done = 0;   ///< points completed so far
  std::size_t total = 0;  ///< points overall (0 until the job starts)
  std::string error;      ///< set when status == kFailed / kCancelled
  JobResult result;       ///< set when status == kDone
};

struct JobStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;  ///< cancelled records still retained
  /// Cumulative since construction (survive history trimming):
  std::uint64_t cancelled_total = 0;
  std::uint64_t deadline_expired_total = 0;
};

struct JobOptions {
  std::size_t runner_count = 1;
  /// Bounds the finished-job history: the oldest done/failed/cancelled
  /// records are dropped once the table exceeds it, so a polling client
  /// should fetch results promptly (nullopt afterwards).
  std::size_t retained_jobs = 256;
  /// Wall-clock budget per job, measured from the moment a runner picks
  /// it up.  Zero = unlimited.
  std::chrono::milliseconds deadline{0};
};

class JobManager {
 public:
  /// Progress callback a job's work function calls as points finish.
  /// Throws JobCancelled / JobDeadlineExceeded when the job must stop —
  /// work functions let those propagate.  Batched sweeps call this once
  /// per lane block (with the block's point count), not once per point,
  /// so cancellation and deadlines take effect at batch granularity.
  using Progress = std::function<void(std::size_t done, std::size_t total)>;
  /// The work itself; runs on a runner thread.  Throwing marks the job
  /// failed with the exception message.
  using Work = std::function<JobResult(const Progress& progress)>;

  explicit JobManager(JobOptions options);
  explicit JobManager(std::size_t runner_count = 1,
                      std::size_t retained_jobs = 256);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Enqueue; returns the job id immediately.  After drain() the job is
  /// admitted but immediately cancelled ("server shutting down").
  std::uint64_t submit(std::string user, std::string description, Work work);

  [[nodiscard]] std::optional<JobSnapshot> get(std::uint64_t id) const;

  /// All of one user's jobs, newest first.
  [[nodiscard]] std::vector<JobSnapshot> list(const std::string& user) const;

  /// Cooperative cancellation: a queued job is cancelled outright; a
  /// running one has its flag raised and stops at its next sweep point.
  CancelOutcome cancel(std::uint64_t id);

  [[nodiscard]] JobStats stats() const;

  /// Block until no job is queued or running (tests, shutdown).
  void wait_idle();

  /// Graceful shutdown: stop admitting work, cancel every queued job,
  /// raise every running job's cancel flag, and wait until the runners
  /// are idle.  Runner threads stay alive (the destructor joins them).
  void drain();

 private:
  struct Record {
    JobSnapshot snapshot;
    Work work;
    /// Shared with the running job's Progress closure; survives record
    /// trimming so a late progress call never dangles.
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  void runner_loop();
  void trim_finished_locked();
  void cancel_queued_locked(Record& record, const char* reason);

  JobOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable job_ready_;  ///< runners wait here
  std::condition_variable idle_;       ///< wait_idle() waits here
  bool stopping_ = false;
  bool draining_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t cancelled_total_ = 0;
  std::uint64_t deadline_total_ = 0;
  std::map<std::uint64_t, Record> jobs_;  ///< keyed by id (insertion order)
  std::deque<std::uint64_t> pending_;     ///< ids awaiting a runner
  std::size_t active_ = 0;                ///< jobs currently running
  std::vector<std::thread> runners_;
};

}  // namespace powerplay::engine
