// job.hpp — asynchronous job manager for long-running evaluations.
//
// A sweep over a big grid is too slow to answer inline on a mid-90s
// modem — and too useful to serialize behind one request.  The web app
// enqueues the work here and answers immediately with a job id; the
// client polls /job?id= for progress and fetches the grid (table or
// CSV) when done.
//
// Jobs are drained by their own small runner-thread pool, deliberately
// separate from the point Executor: a job *waits* on the points it fans
// out, so running jobs on the same pool that executes their points
// could deadlock once every thread held a waiting job.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace powerplay::engine {

enum class JobStatus { kQueued, kRunning, kDone, kFailed };

std::string to_string(JobStatus status);

/// What a finished job hands back: a human-readable table and a
/// machine-readable CSV of the same data.
struct JobResult {
  std::string table;
  std::string csv;
};

/// Immutable copy of a job's state at one poll.
struct JobSnapshot {
  std::uint64_t id = 0;
  std::string user;
  std::string description;
  JobStatus status = JobStatus::kQueued;
  std::size_t done = 0;   ///< points completed so far
  std::size_t total = 0;  ///< points overall (0 until the job starts)
  std::string error;      ///< set when status == kFailed
  JobResult result;       ///< set when status == kDone
};

struct JobStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
};

class JobManager {
 public:
  /// Progress callback a job's work function calls as points finish.
  using Progress = std::function<void(std::size_t done, std::size_t total)>;
  /// The work itself; runs on a runner thread.  Throwing marks the job
  /// failed with the exception message.
  using Work = std::function<JobResult(const Progress& progress)>;

  /// `retained_jobs` bounds the finished-job history: the oldest done/
  /// failed records are dropped once the table exceeds it, so a polling
  /// client should fetch results promptly (they get 404-equivalent
  /// nullopt afterwards).
  explicit JobManager(std::size_t runner_count = 1,
                      std::size_t retained_jobs = 256);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Enqueue; returns the job id immediately.
  std::uint64_t submit(std::string user, std::string description, Work work);

  [[nodiscard]] std::optional<JobSnapshot> get(std::uint64_t id) const;

  /// All of one user's jobs, newest first.
  [[nodiscard]] std::vector<JobSnapshot> list(const std::string& user) const;

  [[nodiscard]] JobStats stats() const;

  /// Block until no job is queued or running (tests, shutdown).
  void wait_idle();

 private:
  struct Record {
    JobSnapshot snapshot;
    Work work;
  };

  void runner_loop();
  void trim_finished_locked();

  std::size_t retained_jobs_;
  mutable std::mutex mutex_;
  std::condition_variable job_ready_;  ///< runners wait here
  std::condition_variable idle_;       ///< wait_idle() waits here
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Record> jobs_;  ///< keyed by id (insertion order)
  std::deque<std::uint64_t> pending_;     ///< ids awaiting a runner
  std::size_t active_ = 0;                ///< jobs currently running
  std::vector<std::thread> runners_;
};

}  // namespace powerplay::engine
