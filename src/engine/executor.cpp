#include "engine/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace powerplay::engine {

Executor::Executor(ExecutorOptions options) : options_(options) {
  if (options_.thread_count == 0) options_.thread_count = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  workers_.reserve(options_.thread_count);
  for (std::size_t i = 0; i < options_.thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_free_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    space_free_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      throw std::runtime_error("engine::Executor: submit after shutdown");
    }
    queue_.push_back(std::move(task));
    ++submitted_;
  }
  task_ready_.notify_one();
}

ExecutorStats Executor::stats() const {
  std::lock_guard lock(mutex_);
  return ExecutorStats{submitted_, executed_, queue_.size(), workers_.size()};
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_free_.notify_one();
    {
      // Count before running: the task body is what signals completion
      // to waiters (TaskGroup), so incrementing afterwards would let a
      // wait() observe all tasks done but the counter still short.
      std::lock_guard lock(mutex_);
      ++executed_;
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  executor_->submit([this, task = std::move(task)] {
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    // Notify under the lock: once pending_ hits zero a waiter may destroy
    // this TaskGroup, so the cv must not be touched after unlocking.
    std::lock_guard lock(mutex_);
    if (thrown && !error_) error_ = thrown;
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void parallel_for(Executor& executor, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || executor.thread_count() <= 1) {
    // A single-worker pool serializes everything anyway; running on the
    // caller skips the queue handoff and wakeup entirely.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Chunk the range so per-task overhead (queue handoff, wakeup) is
  // amortized over several indices: a 64-point sweep on 4 threads costs
  // 16 tasks, not 64, while still giving each thread 4 chunks to steal
  // for load balance.
  const std::size_t max_chunks = executor.thread_count() * 4;
  const std::size_t chunk = (n + max_chunks - 1) / max_chunks;
  TaskGroup group(executor);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    group.run([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  group.wait();
}

}  // namespace powerplay::engine
