#include "engine/fingerprint.hpp"

#include <algorithm>
#include <cstring>

#include "expr/ast.hpp"

namespace powerplay::engine {

void Fnv1a::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash_ ^= p[i];
    hash_ *= 1099511628211ull;  // FNV prime
  }
}

void Fnv1a::number(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  bytes(&bits, sizeof(bits));
}

void Fnv1a::size(std::size_t n) {
  const auto wide = static_cast<std::uint64_t>(n);
  bytes(&wide, sizeof(wide));
}

void Fnv1a::text(const std::string& s) {
  size(s.size());
  bytes(s.data(), s.size());
}

void Fnv1a::tag(char c) { bytes(&c, 1); }

namespace {

// Structural AST hash, equivalent to hashing expr::to_source but with
// no string building: fingerprinting runs once per sweep point, so it
// sits on the cache's hot path.  Two formulas hash equal iff their
// canonical sources are equal (same shapes, names and literals).
void hash_expr(const expr::Expr& e, Fnv1a& h) {
  std::visit(
      [&h](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, expr::NumberNode>) {
          h.tag('n');
          h.number(node.value);
        } else if constexpr (std::is_same_v<T, expr::VariableNode>) {
          h.tag('v');
          h.text(node.name);
        } else if constexpr (std::is_same_v<T, expr::StringNode>) {
          h.tag('s');
          h.text(node.value);
        } else if constexpr (std::is_same_v<T, expr::UnaryNode>) {
          h.tag('u');
          h.tag(static_cast<char>(node.op));
          hash_expr(*node.operand, h);
        } else if constexpr (std::is_same_v<T, expr::BinaryNode>) {
          h.tag('b');
          h.tag(static_cast<char>(node.op));
          hash_expr(*node.lhs, h);
          hash_expr(*node.rhs, h);
        } else if constexpr (std::is_same_v<T, expr::ConditionalNode>) {
          h.tag('?');
          hash_expr(*node.condition, h);
          hash_expr(*node.then_branch, h);
          hash_expr(*node.else_branch, h);
        } else if constexpr (std::is_same_v<T, expr::CallNode>) {
          h.tag('c');
          h.text(node.name);
          h.size(node.args.size());
          for (const expr::ExprPtr& arg : node.args) hash_expr(*arg, h);
        }
      },
      e.node);
}

/// Hashing modes: full content (Play-cache key), or structure only
/// (plan-cache key: literal values are refreshed by bind_from, so they
/// must not split the key).
enum class Mode { kContent, kStructure };

/// Replacement value for `name` in `scope`, honouring the last matching
/// override (sequential Scope::set semantics).
const ParamOverride* find_override(
    const std::vector<ParamOverride>& overrides, const expr::Scope& scope,
    const std::string& name) {
  const ParamOverride* hit = nullptr;
  for (const ParamOverride& ov : overrides) {
    if (ov.scope == &scope && ov.name == name) hit = &ov;
  }
  return hit;
}

void hash_scope(const expr::Scope& scope, Fnv1a& h, Mode mode,
                const std::vector<ParamOverride>& overrides) {
  auto names = scope.local_names();  // sorted: order-independent key
  // An override of a name the scope does not bind yet hashes exactly as
  // the Scope::set it stands in for: a new local binding, in its sorted
  // (std::map) position.
  for (const ParamOverride& ov : overrides) {
    if (ov.scope != &scope) continue;
    const auto at = std::lower_bound(names.begin(), names.end(), ov.name);
    if (at == names.end() || *at != ov.name) names.insert(at, ov.name);
  }
  h.size(names.size());
  for (const std::string& name : names) {
    h.text(name);
    if (const ParamOverride* ov = find_override(overrides, scope, name)) {
      h.tag('#');
      h.number(ov->value);
      continue;
    }
    const auto found = scope.lookup(name);
    if (const double* literal = std::get_if<double>(found->binding)) {
      h.tag('#');
      if (mode == Mode::kContent) h.number(*literal);
    } else {
      h.tag('=');
      hash_expr(*std::get<expr::ExprPtr>(*found->binding), h);
    }
  }
}

void hash_design(const sheet::Design& design, Fnv1a& h, Mode mode,
                 const std::vector<ParamOverride>& overrides) {
  h.tag('D');
  h.text(design.name());
  hash_scope(design.globals(), h, mode, overrides);
  // Custom functions can only be identified by name (a std::function has
  // no stable content); the engine assumes they are pure — docs/engine.md.
  const auto fns = design.function_names();
  h.size(fns.size());
  for (const std::string& fn : fns) h.text(fn);
  h.size(design.rows().size());
  for (const sheet::Row& row : design.rows()) {
    h.tag(row.enabled ? 'R' : 'r');
    h.text(row.name);
    hash_scope(row.params, h, mode, overrides);
    if (row.is_macro()) {
      hash_design(*row.macro, h, mode, overrides);
    } else {
      h.tag('M');
      h.text(row.model->name());
    }
  }
}

}  // namespace

std::uint64_t fingerprint(const sheet::Design& design) {
  Fnv1a h;
  hash_design(design, h, Mode::kContent, {});
  return h.digest();
}

std::uint64_t fingerprint(const sheet::Design& design,
                          const std::vector<ParamOverride>& overrides) {
  Fnv1a h;
  hash_design(design, h, Mode::kContent, overrides);
  return h.digest();
}

std::uint64_t structure_fingerprint(const sheet::Design& design) {
  Fnv1a h;
  hash_design(design, h, Mode::kStructure, {});
  return h.digest();
}

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

}  // namespace powerplay::engine
