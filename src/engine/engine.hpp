// engine.hpp — the parallel evaluation engine.
//
// One EvalEngine per process (the web app owns one): a thread-pool
// executor for Playing independent sweep points concurrently, plus a
// memoized Play cache so an unchanged design — a reloaded page, a
// revisited sweep point, a second user opening a shared design — costs
// a hash instead of a fixed-point evaluation.  Engine-backed sweeps
// are bit-identical to the serial loops in sheet/sweep.hpp: each point
// clones the design, so there is no shared mutable state to order.
#pragma once

#include <memory>

#include "engine/cache.hpp"
#include "engine/executor.hpp"
#include "engine/fingerprint.hpp"
#include "sheet/sweep.hpp"

namespace powerplay::engine {

struct EngineOptions {
  ExecutorOptions executor;
  std::size_t cache_capacity = 4096;
};

class EvalEngine {
 public:
  explicit EvalEngine(EngineOptions options = {});

  [[nodiscard]] Executor& executor() { return executor_; }
  [[nodiscard]] PlayCache& cache() { return cache_; }

  /// Memoized Play: fingerprint, probe the cache, Play on miss.  The
  /// returned result is shared and immutable.
  [[nodiscard]] std::shared_ptr<const sheet::PlayResult> play(
      const sheet::Design& design);

  /// Engine-backed sweeps: parallel over the executor, memoized per
  /// point.  Same signatures, validation and results as the serial
  /// entry points in sheet/sweep.hpp.
  [[nodiscard]] std::vector<sheet::SweepPoint> sweep_global(
      const sheet::Design& design, const std::string& param,
      const std::vector<double>& values,
      const sheet::SweepProgress& progress = {});

  [[nodiscard]] std::vector<sheet::SweepPoint> sweep_row_param(
      const sheet::Design& design, const std::string& row,
      const std::string& param, const std::vector<double>& values,
      const sheet::SweepProgress& progress = {});

  [[nodiscard]] sheet::GridSweep sweep_grid(
      const sheet::Design& design, const std::string& x_param,
      const std::vector<double>& xs, const std::string& y_param,
      const std::vector<double>& ys,
      const sheet::SweepProgress& progress = {});

 private:
  /// The memoizing PlayFn handed to the sheet sweep overloads.
  [[nodiscard]] sheet::PlayFn memoized_play();

  Executor executor_;
  PlayCache cache_;
};

}  // namespace powerplay::engine
