// engine.hpp — the parallel evaluation engine.
//
// One EvalEngine per process (the web app owns one): a thread-pool
// executor for Playing independent sweep points concurrently, a
// memoized Play cache so an unchanged design — a reloaded page, a
// revisited sweep point, a second user opening a shared design — costs
// a hash instead of a fixed-point evaluation, and a plan cache of
// compiled EvalPlans (sheet/plan.hpp) keyed by structural fingerprint
// so the compile cost is paid once per design *shape*, not per edit.
//
// Sweeps are clone-free: instead of copying the whole design per point
// (the serial paths in sheet/sweep.hpp), each worker holds one
// PlanInstance over the shared plan and re-binds the swept parameter's
// slot per point.  Results are bit-identical to the serial loops.
// Per-point Play-cache keys are derived — the design fingerprint
// computed once per sweep, folded with the swept parameter's identity
// and value — so keying costs nanoseconds per point and repeated
// sweeps (re-submitted jobs, multiple users) hit the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "engine/cache.hpp"
#include "engine/executor.hpp"
#include "engine/fingerprint.hpp"
#include "sheet/batch.hpp"
#include "sheet/plan.hpp"
#include "sheet/sweep.hpp"

namespace powerplay::engine {

struct EngineOptions {
  ExecutorOptions executor;
  std::size_t cache_capacity = 4096;
  /// Compiled plans are small but designs have few shapes; a modest
  /// LRU keeps every actively edited design's plan resident.
  std::size_t plan_cache_capacity = 256;
};

/// Compiled evaluation plans, keyed by structure_fingerprint().
using PlanCache = LruCache<sheet::EvalPlan>;

/// Process-lifetime counters for the lane-batched columnar paths
/// (served on /healthz).  `scalar_fallback_points` counts points a
/// columnar call evaluated through the whole-point scalar path
/// (intermodel plans, non-slot-addressable bindings, degenerate
/// batches); `lane_replays` counts programs the batch interpreter had
/// to replay lane-by-lane (divergent conditionals, would-throw
/// conditions).
struct BatchCounters {
  std::uint64_t points = 0;
  std::uint64_t blocks = 0;
  std::uint64_t scalar_fallback_points = 0;
  std::uint64_t lane_replays = 0;
  /// Row-blocks served by the captured-terms fast path (one model
  /// evaluate per block, per-lane operating-point arithmetic only).
  std::uint64_t term_capture_rows = 0;
};

class EvalEngine {
 public:
  explicit EvalEngine(EngineOptions options = {});

  [[nodiscard]] Executor& executor() { return executor_; }
  [[nodiscard]] PlayCache& cache() { return cache_; }
  [[nodiscard]] PlanCache& plans() { return plans_; }

  /// Compiled plan for `design`, from the plan cache when a
  /// structurally identical design was compiled before.
  [[nodiscard]] std::shared_ptr<const sheet::EvalPlan> plan_for(
      const sheet::Design& design);

  /// Memoized Play: fingerprint, probe the cache, run the compiled
  /// plan on miss.  The returned result is shared and immutable.
  [[nodiscard]] std::shared_ptr<const sheet::PlayResult> play(
      const sheet::Design& design);

  /// Engine-backed sweeps: parallel over the executor, memoized per
  /// point, one PlanInstance per worker chunk (no design clones).
  /// Same signatures, validation, errors and results as the serial
  /// entry points in sheet/sweep.hpp.
  [[nodiscard]] std::vector<sheet::SweepPoint> sweep_global(
      const sheet::Design& design, const std::string& param,
      const std::vector<double>& values,
      const sheet::SweepProgress& progress = {});

  [[nodiscard]] std::vector<sheet::SweepPoint> sweep_row_param(
      const sheet::Design& design, const std::string& row,
      const std::string& param, const std::vector<double>& values,
      const sheet::SweepProgress& progress = {});

  [[nodiscard]] sheet::GridSweep sweep_grid(
      const sheet::Design& design, const std::string& x_param,
      const std::vector<double>& xs, const std::string& y_param,
      const std::vector<double>& ys,
      const sheet::SweepProgress& progress = {});

  /// Arbitrary-dimension point evaluation — the substrate of the
  /// exploration workloads (Monte Carlo, Pareto search, surrogate
  /// training): Play the design once per row of `points`, where row i
  /// binds params[j] = points[i][j] for every j.  Unknown parameters are
  /// all reported in one ExprError (sheet::require_globals).  Results
  /// come back in point order, each computed independently of worker
  /// count, so output bytes are identical at 1 and N threads.
  [[nodiscard]] std::vector<sheet::PlayResult> play_points(
      const sheet::Design& design, const std::vector<std::string>& params,
      const std::vector<std::vector<double>>& points,
      const sheet::SweepProgress& progress = {});

  /// Columnar grid sweep on the lane-batched substrate
  /// (sheet/batch.hpp): points partition into kLaneWidth lane blocks
  /// by point index — a thread-count-independent split — and each
  /// worker streams its blocks' metrics straight into the shared
  /// column arrays.  No per-point PlayResult is materialized and the
  /// Play cache is bypassed entirely; values are bit-identical to
  /// sweep_grid (tests/batch_test.cpp asserts this differentially).
  /// Same validation and errors as sweep_grid.
  [[nodiscard]] sheet::ColumnarGrid sweep_grid_columnar(
      const sheet::Design& design, const std::string& x_param,
      const std::vector<double>& xs, const std::string& y_param,
      const std::vector<double>& ys,
      const sheet::SweepProgress& progress = {});

  /// Columnar counterpart of play_points: same validation, errors and
  /// point order, four metric columns instead of PlayResults.  The
  /// batched explore workloads (Monte Carlo, Pareto, surrogate
  /// training) run on this.  Deterministic at any thread count.
  [[nodiscard]] sheet::PointColumns play_points_columnar(
      const sheet::Design& design, const std::vector<std::string>& params,
      const std::vector<std::vector<double>>& points,
      const sheet::SweepProgress& progress = {});

  /// Snapshot of the process-lifetime batch counters.
  [[nodiscard]] BatchCounters batch_counters() const;

 private:
  /// Play `inst` (slots already bound for the point) under Play-cache
  /// key `key`: probe first, insert on miss.
  [[nodiscard]] std::shared_ptr<const sheet::PlayResult> play_bound(
      sheet::PlanInstance& inst, std::uint64_t key);

  /// Point-index ranges sized so each worker chunk amortizes one
  /// PlanInstance over many points.
  [[nodiscard]] std::size_t chunk_count(std::size_t points) const;

  /// Shared columnar-path driver: partition `total` points into lane
  /// blocks, run them over the executor, accumulate batch counters.
  /// `fill_lanes(block, base, width, lanes)` loads the slot lane
  /// values for one block.
  template <typename FillLanes>
  void run_columnar(const sheet::Design& design,
                    const std::vector<expr::SlotId>& slots,
                    std::size_t total, sheet::PointColumns& out,
                    const sheet::SweepProgress& progress,
                    FillLanes&& fill_lanes);

  Executor executor_;
  PlayCache cache_;
  PlanCache plans_;

  std::atomic<std::uint64_t> batch_points_{0};
  std::atomic<std::uint64_t> batch_blocks_{0};
  std::atomic<std::uint64_t> batch_fallback_points_{0};
  std::atomic<std::uint64_t> batch_lane_replays_{0};
  std::atomic<std::uint64_t> batch_term_capture_rows_{0};
};

}  // namespace powerplay::engine
