// executor.hpp — fixed-size thread pool with a bounded task queue.
//
// The evaluation engine behind the web front end: sweep points, cache
// refills and background jobs all run here.  The pool is deliberately
// small and bounded — like the HTTP server's worker pool, it sheds
// pressure by blocking the producer instead of queueing without limit,
// so a burst of sweep requests cannot exhaust memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace powerplay::engine {

/// Sizing knobs.  Defaults suit tests and a small site; production
/// raises thread_count toward the core count.
struct ExecutorOptions {
  std::size_t thread_count = 4;     ///< fixed pool size (clamped to >= 1)
  std::size_t queue_capacity = 256; ///< submit() blocks when this many wait
};

/// Counters a health endpoint can poll.
struct ExecutorStats {
  std::uint64_t submitted = 0;  ///< tasks accepted by submit()
  std::uint64_t executed = 0;   ///< tasks run to completion (or thrown)
  std::size_t queue_depth = 0;  ///< tasks waiting for a worker right now
  std::size_t thread_count = 0;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue one task.  Blocks while the queue is at capacity (back
  /// pressure); throws HttpError-free std::runtime_error after shutdown.
  /// A task's exceptions are the submitter's problem — wrap with
  /// TaskGroup (below) to collect them; a bare task that throws
  /// terminates, as with std::thread.
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }
  [[nodiscard]] ExecutorStats stats() const;

 private:
  void worker_loop();

  ExecutorOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;   ///< workers wait here
  std::condition_variable space_free_;   ///< blocked submitters wait here
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<std::thread> workers_;
};

/// Fork-join helper: submit a batch of tasks, then wait() for all of
/// them.  The first exception any task throws is captured and rethrown
/// from wait(); later ones are dropped (the sweep is already poisoned).
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor) : executor_(&executor) {}
  ~TaskGroup();  ///< waits for completion; never throws

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);

  /// Block until every run() task finished; rethrow the first failure.
  void wait();

 private:
  Executor* executor_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;
};

/// Run body(0..n-1) across the pool and wait.  The n == 0 and n == 1
/// cases never touch the pool (no task overhead for trivial sweeps).
void parallel_for(Executor& executor, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace powerplay::engine
