#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace powerplay::engine {

namespace {

// Derived per-point Play-cache keys for the clone-free sweeps.  Hashing
// the whole design per point (fingerprint(design, overrides)) costs
// more than the compiled Play itself on small sheets, so sweeps fold
// the swept parameter's identity and value into the design fingerprint
// computed once per sweep.  Identical sweeps of content-equal designs
// produce identical keys, which is what memoizes repeated jobs; the
// keys are NOT the digests of equivalently edited clones, so sweep
// entries are not shared with play() of a hand-edited design (a miss
// there is a correctness no-op).
std::uint64_t fold(std::uint64_t h, std::uint64_t block) {
  for (int i = 0; i < 8; ++i) {
    h ^= (block >> (8 * i)) & 0xff;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

std::uint64_t fold(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fold(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return fold(h, bits);
}

}  // namespace

EvalEngine::EvalEngine(EngineOptions options)
    : executor_(options.executor),
      cache_(options.cache_capacity),
      plans_(options.plan_cache_capacity) {}

std::shared_ptr<const sheet::EvalPlan> EvalEngine::plan_for(
    const sheet::Design& design) {
  const std::uint64_t key = structure_fingerprint(design);
  if (auto cached = plans_.find(key)) return cached;
  auto fresh = sheet::EvalPlan::compile(design);
  plans_.insert(key, fresh);
  return fresh;
}

std::shared_ptr<const sheet::PlayResult> EvalEngine::play(
    const sheet::Design& design) {
  const std::uint64_t key = fingerprint(design);
  if (auto cached = cache_.find(key)) return cached;
  sheet::PlanInstance inst(plan_for(design));
  inst.bind_from(design);
  auto fresh = std::make_shared<const sheet::PlayResult>(inst.play());
  cache_.insert(key, fresh);
  return fresh;
}

std::shared_ptr<const sheet::PlayResult> EvalEngine::play_bound(
    sheet::PlanInstance& inst, std::uint64_t key) {
  if (auto cached = cache_.find(key)) return cached;
  auto fresh = std::make_shared<const sheet::PlayResult>(inst.play());
  cache_.insert(key, fresh);
  return fresh;
}

std::size_t EvalEngine::chunk_count(std::size_t points) const {
  // Enough chunks to keep every worker busy with some slack for uneven
  // point costs, few enough that one PlanInstance amortizes over many
  // points.  One worker gets one chunk: no load to balance, and a single
  // PlanInstance serves the whole sweep.
  if (executor_.thread_count() <= 1) return 1;
  const std::size_t target = executor_.thread_count() * 2;
  return std::max<std::size_t>(1, std::min(points, target));
}

std::vector<sheet::SweepPoint> EvalEngine::sweep_global(
    const sheet::Design& design, const std::string& param,
    const std::vector<double>& values, const sheet::SweepProgress& progress) {
  sheet::require_global(design, param, "sweep_global");
  auto plan = plan_for(design);
  const auto slot = plan->global_slot(param);
  if (!slot) {
    // The binding exists but is not slot-addressable (inherited through
    // a parent scope): fall back to the clone-per-point path.
    return sheet::sweep_global(
        executor_, design, param, values,
        [this](const sheet::Design& d) { return *play(d); }, progress);
  }
  const std::size_t n = values.size();
  std::vector<sheet::SweepPoint> out(n);
  std::atomic<std::size_t> done{0};
  const std::size_t chunks = chunk_count(n);
  const std::uint64_t base = fold(fingerprint(design), "g:" + param);
  parallel_for(executor_, chunks, [&](std::size_t c) {
    sheet::PlanInstance inst(plan);
    inst.bind_from(design);
    for (std::size_t i = c * n / chunks; i < (c + 1) * n / chunks; ++i) {
      inst.bind(*slot, values[i]);
      out[i] = sheet::SweepPoint{values[i],
                                 *play_bound(inst, fold(base, values[i]))};
      if (progress) progress(done.fetch_add(1) + 1, n);
    }
  });
  return out;
}

std::vector<sheet::SweepPoint> EvalEngine::sweep_row_param(
    const sheet::Design& design, const std::string& row,
    const std::string& param, const std::vector<double>& values,
    const sheet::SweepProgress& progress) {
  const sheet::Row* r = design.find_row(row);
  if (r == nullptr) {
    throw expr::ExprError("sweep_row_param: no row named '" + row +
                          "' in design '" + design.name() + "'");
  }
  sheet::require_row_param(design, *r, param);
  if (values.empty()) return {};

  // When the row does not bind the parameter locally (it rides on a
  // model default or a macro global), the serial path's Scope::set
  // *creates* the binding — a structural change.  One clone per sweep
  // (not per point) materializes that binding so the plan has a slot
  // for it; per-point digests still match the serial clone-and-set.
  const bool local = r->params.has_local(param);
  sheet::Design materialized = design;
  if (!local) materialized.find_row(row)->params.set(param, values[0]);
  const sheet::Design& src = local ? design : materialized;

  auto plan = plan_for(src);
  const auto slot = plan->row_param_slot(row, param);
  if (!slot) {
    return sheet::sweep_row_param(
        executor_, design, row, param, values,
        [this](const sheet::Design& d) { return *play(d); }, progress);
  }
  const std::size_t n = values.size();
  std::vector<sheet::SweepPoint> out(n);
  std::atomic<std::size_t> done{0};
  const std::size_t chunks = chunk_count(n);
  const std::uint64_t base =
      fold(fingerprint(src), "r:" + row + ":" + param);
  parallel_for(executor_, chunks, [&](std::size_t c) {
    sheet::PlanInstance inst(plan);
    inst.bind_from(src);
    for (std::size_t i = c * n / chunks; i < (c + 1) * n / chunks; ++i) {
      inst.bind(*slot, values[i]);
      out[i] = sheet::SweepPoint{values[i],
                                 *play_bound(inst, fold(base, values[i]))};
      if (progress) progress(done.fetch_add(1) + 1, n);
    }
  });
  return out;
}

std::vector<sheet::PlayResult> EvalEngine::play_points(
    const sheet::Design& design, const std::vector<std::string>& params,
    const std::vector<std::vector<double>>& points,
    const sheet::SweepProgress& progress) {
  sheet::require_globals(design, params, "play_points");
  for (const std::vector<double>& point : points) {
    if (point.size() != params.size()) {
      throw expr::ExprError(
          "play_points: every point must bind exactly " +
          std::to_string(params.size()) + " parameter value(s)");
    }
  }
  const std::size_t n = points.size();
  if (n == 0) return {};

  auto plan = plan_for(design);
  std::vector<expr::SlotId> slots;
  slots.reserve(params.size());
  bool slot_bound = true;
  for (const std::string& param : params) {
    const auto slot = plan->global_slot(param);
    if (!slot) {
      slot_bound = false;
      break;
    }
    slots.push_back(*slot);
  }

  std::vector<sheet::PlayResult> out(n);
  std::atomic<std::size_t> done{0};

  if (!slot_bound) {
    // Some binding is not slot-addressable (inherited through a parent
    // scope): clone-per-point fallback, memoized by full fingerprint.
    parallel_for(executor_, n, [&](std::size_t i) {
      sheet::Design work = design;
      for (std::size_t j = 0; j < params.size(); ++j) {
        work.globals().set(params[j], points[i][j]);
      }
      out[i] = *play(work);
      if (progress) progress(done.fetch_add(1) + 1, n);
    });
    return out;
  }

  std::uint64_t base = fold(fingerprint(design), "pts:");
  for (const std::string& param : params) base = fold(base, param + ";");
  const std::size_t chunks = chunk_count(n);
  parallel_for(executor_, chunks, [&](std::size_t c) {
    sheet::PlanInstance inst(plan);
    inst.bind_from(design);
    for (std::size_t i = c * n / chunks; i < (c + 1) * n / chunks; ++i) {
      std::uint64_t key = base;
      for (std::size_t j = 0; j < slots.size(); ++j) {
        inst.bind(slots[j], points[i][j]);
        key = fold(key, points[i][j]);
      }
      out[i] = *play_bound(inst, key);
      if (progress) progress(done.fetch_add(1) + 1, n);
    }
  });
  return out;
}

template <typename FillLanes>
void EvalEngine::run_columnar(const sheet::Design& design,
                              const std::vector<expr::SlotId>& slots,
                              std::size_t total, sheet::PointColumns& out,
                              const sheet::SweepProgress& progress,
                              FillLanes&& fill_lanes) {
  constexpr std::size_t kW = sheet::BatchPlanInstance::kLaneWidth;
  auto plan = plan_for(design);
  out.resize(total);
  const std::size_t blocks = (total + kW - 1) / kW;
  std::atomic<std::size_t> done{0};
  const std::size_t chunks = chunk_count(blocks);
  parallel_for(executor_, chunks, [&](std::size_t c) {
    sheet::BatchPlanInstance inst(plan);
    inst.bind_from(design);
    std::vector<std::vector<double>> lanes(slots.size(),
                                           std::vector<double>(kW, 0.0));
    for (std::size_t b = c * blocks / chunks; b < (c + 1) * blocks / chunks;
         ++b) {
      const std::size_t base = b * kW;
      const std::size_t width = std::min(kW, total - base);
      fill_lanes(base, width, lanes);
      inst.play_block(slots, lanes, width, out, base);
      // One progress call (and so one cancellation / deadline check in
      // job-driven sweeps) per lane block, not per point.
      if (progress) progress(done.fetch_add(width) + width, total);
    }
    const sheet::BatchStats s = inst.stats();
    batch_points_.fetch_add(s.points, std::memory_order_relaxed);
    batch_blocks_.fetch_add(s.blocks, std::memory_order_relaxed);
    batch_fallback_points_.fetch_add(s.scalar_fallback_points,
                                     std::memory_order_relaxed);
    batch_lane_replays_.fetch_add(s.lane_replays, std::memory_order_relaxed);
    batch_term_capture_rows_.fetch_add(s.term_capture_rows,
                                       std::memory_order_relaxed);
  });
}

sheet::ColumnarGrid EvalEngine::sweep_grid_columnar(
    const sheet::Design& design, const std::string& x_param,
    const std::vector<double>& xs, const std::string& y_param,
    const std::vector<double>& ys, const sheet::SweepProgress& progress) {
  if (x_param == y_param) {
    throw expr::ExprError("sweep_grid: the two parameters must differ");
  }
  sheet::require_globals(design, {x_param, y_param}, "sweep_grid");
  sheet::ColumnarGrid out;
  out.x_param = x_param;
  out.y_param = y_param;
  out.xs = xs;
  out.ys = ys;
  const std::size_t total = xs.size() * ys.size();
  auto plan = plan_for(design);
  const auto x_slot = plan->global_slot(x_param);
  const auto y_slot = plan->global_slot(y_param);
  if (!x_slot || !y_slot || total <= 1) {
    // Non-slot-addressable bindings or a degenerate (empty /
    // single-point) grid: run the scalar grid sweep and read its
    // columns out — no lane arrays are ever allocated.
    const sheet::GridSweep g =
        sweep_grid(design, x_param, xs, y_param, ys, progress);
    out.cols.resize(total);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      for (std::size_t j = 0; j < ys.size(); ++j) {
        const std::size_t k = i * ys.size() + j;
        const sheet::PlayResult& r = g.results[i][j];
        out.cols.power_w[k] = r.total.total_power().si();
        out.cols.energy_j[k] = r.total.energy_per_op.si();
        out.cols.area_m2[k] = r.total.area.si();
        out.cols.delay_s[k] = r.total.delay.si();
      }
    }
    batch_points_.fetch_add(total, std::memory_order_relaxed);
    batch_fallback_points_.fetch_add(total, std::memory_order_relaxed);
    return out;
  }
  const std::vector<expr::SlotId> slots{*x_slot, *y_slot};
  run_columnar(design, slots, total, out.cols, progress,
               [&](std::size_t base, std::size_t width,
                   std::vector<std::vector<double>>& lanes) {
                 for (std::size_t l = 0; l < width; ++l) {
                   const std::size_t k = base + l;
                   lanes[0][l] = xs[k / ys.size()];
                   lanes[1][l] = ys[k % ys.size()];
                 }
               });
  return out;
}

sheet::PointColumns EvalEngine::play_points_columnar(
    const sheet::Design& design, const std::vector<std::string>& params,
    const std::vector<std::vector<double>>& points,
    const sheet::SweepProgress& progress) {
  sheet::require_globals(design, params, "play_points");
  for (const std::vector<double>& point : points) {
    if (point.size() != params.size()) {
      throw expr::ExprError(
          "play_points: every point must bind exactly " +
          std::to_string(params.size()) + " parameter value(s)");
    }
  }
  const std::size_t n = points.size();
  sheet::PointColumns out;
  if (n == 0) return out;

  auto plan = plan_for(design);
  std::vector<expr::SlotId> slots;
  slots.reserve(params.size());
  bool slot_bound = true;
  for (const std::string& param : params) {
    const auto slot = plan->global_slot(param);
    if (!slot) {
      slot_bound = false;
      break;
    }
    slots.push_back(*slot);
  }

  if (!slot_bound || n <= 1) {
    // Scalar path for non-slot-addressable bindings and degenerate
    // batches (no lane arrays, no lane partitioning).
    const std::vector<sheet::PlayResult> rs =
        play_points(design, params, points, progress);
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.power_w[i] = rs[i].total.total_power().si();
      out.energy_j[i] = rs[i].total.energy_per_op.si();
      out.area_m2[i] = rs[i].total.area.si();
      out.delay_s[i] = rs[i].total.delay.si();
    }
    batch_points_.fetch_add(n, std::memory_order_relaxed);
    batch_fallback_points_.fetch_add(n, std::memory_order_relaxed);
    return out;
  }

  run_columnar(design, slots, n, out, progress,
               [&](std::size_t base, std::size_t width,
                   std::vector<std::vector<double>>& lanes) {
                 for (std::size_t l = 0; l < width; ++l) {
                   const std::vector<double>& point = points[base + l];
                   for (std::size_t j = 0; j < slots.size(); ++j) {
                     lanes[j][l] = point[j];
                   }
                 }
               });
  return out;
}

BatchCounters EvalEngine::batch_counters() const {
  BatchCounters c;
  c.points = batch_points_.load(std::memory_order_relaxed);
  c.blocks = batch_blocks_.load(std::memory_order_relaxed);
  c.scalar_fallback_points =
      batch_fallback_points_.load(std::memory_order_relaxed);
  c.lane_replays = batch_lane_replays_.load(std::memory_order_relaxed);
  c.term_capture_rows =
      batch_term_capture_rows_.load(std::memory_order_relaxed);
  return c;
}

sheet::GridSweep EvalEngine::sweep_grid(const sheet::Design& design,
                                        const std::string& x_param,
                                        const std::vector<double>& xs,
                                        const std::string& y_param,
                                        const std::vector<double>& ys,
                                        const sheet::SweepProgress& progress) {
  if (x_param == y_param) {
    throw expr::ExprError("sweep_grid: the two parameters must differ");
  }
  sheet::require_globals(design, {x_param, y_param}, "sweep_grid");
  auto plan = plan_for(design);
  const auto x_slot = plan->global_slot(x_param);
  const auto y_slot = plan->global_slot(y_param);
  if (!x_slot || !y_slot) {
    return sheet::sweep_grid(
        executor_, design, x_param, xs, y_param, ys,
        [this](const sheet::Design& d) { return *play(d); }, progress);
  }
  sheet::GridSweep out;
  out.x_param = x_param;
  out.y_param = y_param;
  out.xs = xs;
  out.ys = ys;
  out.results.assign(xs.size(), std::vector<sheet::PlayResult>(ys.size()));
  const std::size_t total = xs.size() * ys.size();
  std::atomic<std::size_t> done{0};
  const std::size_t chunks = chunk_count(total);
  const std::uint64_t base =
      fold(fingerprint(design), "g2:" + x_param + ":" + y_param);
  parallel_for(executor_, chunks, [&](std::size_t c) {
    sheet::PlanInstance inst(plan);
    inst.bind_from(design);
    for (std::size_t k = c * total / chunks; k < (c + 1) * total / chunks;
         ++k) {
      const std::size_t i = k / ys.size();
      const std::size_t j = k % ys.size();
      inst.bind(*x_slot, xs[i]);
      inst.bind(*y_slot, ys[j]);
      out.results[i][j] =
          *play_bound(inst, fold(fold(base, xs[i]), ys[j]));
      if (progress) progress(done.fetch_add(1) + 1, total);
    }
  });
  return out;
}

}  // namespace powerplay::engine
