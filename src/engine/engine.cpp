#include "engine/engine.hpp"

namespace powerplay::engine {

EvalEngine::EvalEngine(EngineOptions options)
    : executor_(options.executor), cache_(options.cache_capacity) {}

std::shared_ptr<const sheet::PlayResult> EvalEngine::play(
    const sheet::Design& design) {
  const std::uint64_t key = fingerprint(design);
  if (auto cached = cache_.find(key)) return cached;
  auto fresh = std::make_shared<const sheet::PlayResult>(design.play());
  cache_.insert(key, fresh);
  return fresh;
}

sheet::PlayFn EvalEngine::memoized_play() {
  return [this](const sheet::Design& d) { return *play(d); };
}

std::vector<sheet::SweepPoint> EvalEngine::sweep_global(
    const sheet::Design& design, const std::string& param,
    const std::vector<double>& values, const sheet::SweepProgress& progress) {
  return sheet::sweep_global(executor_, design, param, values,
                             memoized_play(), progress);
}

std::vector<sheet::SweepPoint> EvalEngine::sweep_row_param(
    const sheet::Design& design, const std::string& row,
    const std::string& param, const std::vector<double>& values,
    const sheet::SweepProgress& progress) {
  return sheet::sweep_row_param(executor_, design, row, param, values,
                                memoized_play(), progress);
}

sheet::GridSweep EvalEngine::sweep_grid(const sheet::Design& design,
                                        const std::string& x_param,
                                        const std::vector<double>& xs,
                                        const std::string& y_param,
                                        const std::vector<double>& ys,
                                        const sheet::SweepProgress& progress) {
  return sheet::sweep_grid(executor_, design, x_param, xs, y_param, ys,
                           memoized_play(), progress);
}

}  // namespace powerplay::engine
