// fingerprint.hpp — content fingerprint of a design for result memoing.
//
// Two designs that Play identically must hash identically; anything Play
// reads — global bindings (literal bits or formula source), row names,
// models, enabled flags, row parameters, macro sub-designs, and the
// names of design-local custom functions — feeds the hash.  Fields Play
// never reads (descriptions, row notes) are excluded, so editing a
// comment does not evict a cached result.
//
// FNV-1a 64-bit, the same family the library store uses for password
// digests: cheap, dependency-free, and good enough for a cache key (a
// collision costs a wrong table, not a security hole — see
// docs/engine.md for the collision budget discussion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sheet/design.hpp"

namespace powerplay::engine {

/// Streaming FNV-1a 64-bit hasher with length/type framing so that
/// ("ab","c") and ("a","bc") cannot collide structurally.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n);
  void number(double v);            ///< exact bit pattern (bit-identical key)
  void size(std::size_t n);
  void text(const std::string& s);  ///< length-prefixed
  void tag(char c);                 ///< structural separator

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

/// Content fingerprint of everything `design.play()` reads.
std::uint64_t fingerprint(const sheet::Design& design);

/// A literal substituted for one binding while hashing: `scope` is the
/// address of a Scope inside the design being fingerprinted (its
/// globals(), or one row's params), `name` the binding to replace.  A
/// name the scope does not bind locally is hashed as if Scope::set had
/// just created it.
struct ParamOverride {
  const expr::Scope* scope = nullptr;
  std::string name;
  double value = 0.0;
};

/// Fingerprint of `design` as it would hash after cloning it and
/// Scope::set-ing each override — but without the clone.  This is how
/// the engine's clone-free sweeps key the Play cache per point:
/// `fingerprint(d, {{&d.globals(), "vdd", 3.3}})` equals
/// `fingerprint(clone_with_vdd_3_3)` exactly, so plan-backed sweeps
/// share cache entries with the serial clone-per-point paths.
std::uint64_t fingerprint(const sheet::Design& design,
                          const std::vector<ParamOverride>& overrides);

/// Structural fingerprint: like fingerprint(), but literal bindings
/// contribute only their existence (kind tag), not their value bits.
/// Two designs with equal structural fingerprints compile to the same
/// EvalPlan — same slots, programs, row graph — differing only in the
/// literal values PlanInstance::bind_from refreshes, which is exactly
/// the plan cache's key invariant.  Formula bindings hash fully (a
/// formula's shape is compiled into the plan).
std::uint64_t structure_fingerprint(const sheet::Design& design);

/// Hex rendering for logs and /healthz.
std::string fingerprint_hex(std::uint64_t fp);

}  // namespace powerplay::engine
