#include "engine/cache.hpp"

#include <utility>

namespace powerplay::engine {

PlayCache::PlayCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) capacity_ = 1;
}

std::shared_ptr<const sheet::PlayResult> PlayCache::find(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->second;
}

void PlayCache::insert(std::uint64_t key,
                       std::shared_ptr<const sheet::PlayResult> value) {
  std::lock_guard lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlayCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

CacheStats PlayCache::stats() const {
  std::lock_guard lock(mutex_);
  return CacheStats{hits_, misses_, evictions_, lru_.size(), capacity_};
}

}  // namespace powerplay::engine
