// repl.hpp — a line-oriented command interpreter over the PowerPlay
// library: the "no browser at hand" front end.  Same store and model
// registry as the web application, so designs edited here show up there
// and vice versa.
//
// Commands (one per line, '#' comments):
//   help                          — list commands
//   library [category]            — list models (optionally one category)
//   doc <model>                   — model documentation + parameters
//   new <design>                  — start a fresh design sheet
//   open <design>                 — load a stored design
//   save                          — persist the current design
//   global <name> <value|expr>    — set a design global
//   add <row> <model>             — append a model instance row
//   addmacro <row> <design>       — append a stored design as a macro
//   set <row> <param> <value|expr>— set a row parameter
//   play                          — recompute and print the spreadsheet
//   csv                           — print the spreadsheet as CSV
//   sweep <global> <from> <to> <n>— linear what-if sweep
//   designs                       — list stored designs
//   quit                          — exit
#pragma once

#include <istream>
#include <ostream>

#include "library/store.hpp"

namespace powerplay::cli {

struct ReplOptions {
  bool echo_prompt = true;  ///< print "powerplay> " prompts (off in tests)
};

/// Run the interpreter until EOF or `quit`.  Returns the number of
/// commands that failed (0 = clean session); command errors are printed
/// to `out` and do not abort the session.
int run_repl(std::istream& in, std::ostream& out, library::LibraryStore store,
             const ReplOptions& options = {});

}  // namespace powerplay::cli
