#include "cli/repl.hpp"

#include <memory>
#include <optional>
#include <sstream>

#include "engine/engine.hpp"
#include "explore/inverse.hpp"
#include "explore/mc.hpp"
#include "explore/pareto.hpp"
#include "explore/surrogate.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"
#include "web/federation.hpp"

namespace powerplay::cli {

namespace {

constexpr const char* kHelp = R"(commands:
  library [category]             list models
  doc <model>                    model documentation + parameters
  new <design>                   start a fresh design sheet
  open <design>                  load a stored design
  save                           persist the current design
  global <name> <value|expr>     set a design global
  add <row> <model>              append a model instance row
  addmacro <row> <design>        append a stored design as a macro
  set <row> <param> <value|expr> set a row parameter
  enable <row> / disable <row>   include/exclude a row from Play
  play                           recompute and print the spreadsheet
  csv                            print the spreadsheet as CSV
  sweep <global> <from> <to> <n> linear what-if sweep
  explore mc <samples> <seed> <name=dist;...>
                                 Monte Carlo power distribution
                                 (dist: uniform(a,b) normal(mu,sigma)
                                  choice(v1,v2,...))
  explore pareto <obj1,obj2,...> <samples> <seed> <name=dist;...>
                                 sampled Pareto frontier (objectives:
                                 power/area/energy/delay or a param,
                                 optionally min:/max: prefixed)
  explore inverse <param> <lo> <hi> <metric> <limit>
                                 largest param value with metric <= limit
  explore fit <model> <basis> <samples> <seed> <name=dist;...>
                                 fit + save a surrogate model
                                 (basis: poly1 | poly2 | log)
  fed add <host:port>            join a peer to the federated network
  fed remove <host:port>         forget a peer (mirrored models stay)
  fed hosts                      per-host health/breaker table
  fed sync                       mirror every peer's shareable models
  fed models [query]             federated search (merged + ranked)
  fed fetch <model>              fetch + import from the healthiest peer
  designs                        list stored designs
  quit                           exit
)";

/// Bind `text` as a literal when it parses as a number, else a formula.
void bind_value(expr::Scope& scope, const std::string& name,
          const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos == text.size()) {
      scope.set(name, v);
      return;
    }
  } catch (const std::exception&) {
    // fall through to formula binding
  }
  scope.set_formula(name, text);
}

class Session {
 public:
  Session(std::ostream& out, library::LibraryStore store)
      : out_(out), store_(std::move(store)) {
    models::add_berkeley_models(registry_);
    store_.load_all_models(registry_);
  }

  /// Returns false when the session should end.
  bool dispatch(const std::string& line, int& failures) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    try {
      if (cmd == "quit" || cmd == "exit") return false;
      if (cmd == "help") {
        out_ << kHelp;
      } else if (cmd == "library") {
        cmd_library(is);
      } else if (cmd == "doc") {
        cmd_doc(is);
      } else if (cmd == "new") {
        design_.emplace(take(is, "design name"));
      } else if (cmd == "open") {
        design_.emplace(
            *store_.load_design(take(is, "design name"), registry_));
      } else if (cmd == "save") {
        store_.save_design(current());
        out_ << "saved '" << current().name() << "'\n";
      } else if (cmd == "global") {
        const std::string name = take(is, "global name");
        bind_value(current().globals(), name, rest(is, "value"));
      } else if (cmd == "add") {
        const std::string row = take(is, "row name");
        const std::string model = take(is, "model name");
        current().add_row(row, registry_.find_shared(model) != nullptr
                                   ? registry_.find_shared(model)
                                   : throw expr::ExprError(
                                         "unknown model '" + model + "'"));
      } else if (cmd == "addmacro") {
        const std::string row = take(is, "row name");
        const std::string name = take(is, "design name");
        current().add_macro(row, store_.load_design(name, registry_));
      } else if (cmd == "set") {
        const std::string row_name = take(is, "row name");
        const std::string param = take(is, "parameter");
        sheet::Row* row = current().find_row(row_name);
        if (row == nullptr) {
          throw expr::ExprError("no row named '" + row_name + "'");
        }
        bind_value(row->params, param, rest(is, "value"));
      } else if (cmd == "enable" || cmd == "disable") {
        const std::string row_name = take(is, "row name");
        sheet::Row* row = current().find_row(row_name);
        if (row == nullptr) {
          throw expr::ExprError("no row named '" + row_name + "'");
        }
        row->enabled = (cmd == "enable");
      } else if (cmd == "play") {
        out_ << sheet::to_table(current().play());
      } else if (cmd == "csv") {
        out_ << sheet::to_csv(current().play());
      } else if (cmd == "sweep") {
        const std::string name = take(is, "global name");
        const double from = number(is, "from");
        const double to = number(is, "to");
        const int points = static_cast<int>(number(is, "points"));
        out_ << sheet::sweep_table(
            name, sheet::sweep_global(current(), name,
                                      sheet::linspace(from, to, points)));
      } else if (cmd == "explore") {
        cmd_explore(is);
      } else if (cmd == "fed") {
        cmd_fed(is);
      } else if (cmd == "designs") {
        for (const std::string& d : store_.list_designs()) {
          out_ << d << '\n';
        }
      } else {
        throw expr::ExprError("unknown command '" + cmd +
                              "' (try 'help')");
      }
    } catch (const std::exception& e) {
      out_ << "error: " << e.what() << '\n';
      ++failures;
    }
    return true;
  }

 private:
  sheet::Design& current() {
    if (!design_) {
      throw expr::ExprError("no open design (use 'new' or 'open')");
    }
    return *design_;
  }

  static std::string take(std::istringstream& is, const char* what) {
    std::string out;
    if (!(is >> out)) {
      throw expr::ExprError(std::string("missing ") + what);
    }
    return out;
  }

  static double number(std::istringstream& is, const char* what) {
    const std::string text = take(is, what);
    try {
      return std::stod(text);
    } catch (const std::exception&) {
      throw expr::ExprError(std::string("bad number for ") + what + ": '" +
                            text + "'");
    }
  }

  /// Remainder of the line (trimmed) — lets formulas contain spaces.
  static std::string rest(std::istringstream& is, const char* what) {
    std::string out;
    std::getline(is, out);
    const auto begin = out.find_first_not_of(" \t");
    if (begin == std::string::npos) {
      throw expr::ExprError(std::string("missing ") + what);
    }
    return out.substr(begin);
  }

  void cmd_explore(std::istringstream& is) {
    const std::string mode = take(is, "explore mode (mc|pareto|inverse|fit)");
    if (mode == "mc") {
      explore::McSpec spec;
      spec.samples = static_cast<std::size_t>(number(is, "samples"));
      spec.seed = static_cast<std::uint64_t>(number(is, "seed"));
      spec.params = explore::parse_dist_params(rest(is, "distributions"));
      out_ << explore::mc_table(
          explore::run_monte_carlo(engine_, current(), spec));
    } else if (mode == "pareto") {
      explore::ParetoSpec spec;
      const std::string objectives = take(is, "objectives");
      spec.samples = static_cast<std::size_t>(number(is, "samples"));
      spec.seed = static_cast<std::uint64_t>(number(is, "seed"));
      spec.dists = explore::parse_dist_params(rest(is, "distributions"));
      std::vector<std::string> names;
      for (const explore::DistParam& p : spec.dists) {
        names.push_back(p.name);
      }
      std::istringstream objs(objectives);
      std::string objective;
      while (std::getline(objs, objective, ',')) {
        if (objective.empty()) continue;
        spec.objectives.push_back(
            explore::parse_objective(objective, names));
      }
      out_ << explore::pareto_table(
          explore::run_pareto(engine_, current(), spec));
    } else if (mode == "inverse") {
      explore::InverseSpec spec;
      spec.param = take(is, "parameter");
      spec.lo = number(is, "lo");
      spec.hi = number(is, "hi");
      spec.metric = take(is, "metric");
      spec.limit = number(is, "limit");
      out_ << explore::inverse_table(
          spec, explore::solve_inverse(engine_, current(), spec));
    } else if (mode == "fit") {
      explore::FitSpec spec;
      spec.model_name = take(is, "model name");
      spec.basis = take(is, "basis");
      spec.samples = static_cast<std::size_t>(number(is, "samples"));
      spec.seed = static_cast<std::uint64_t>(number(is, "seed"));
      spec.params = explore::parse_dist_params(rest(is, "distributions"));
      const explore::FitResult fit =
          explore::fit_surrogate(engine_, current(), spec);
      store_.save_model(fit.definition);
      registry_.add_or_replace(
          std::make_shared<model::UserModel>(fit.definition));
      out_ << explore::fit_table(fit);
      out_ << "saved model '" << fit.definition.name << "'\n";
    } else {
      throw expr::ExprError("unknown explore mode '" + mode +
                            "' (mc|pareto|inverse|fit)");
    }
  }

  void cmd_library(std::istringstream& is) {
    std::string category;
    is >> category;
    for (const std::string& name : registry_.names()) {
      const model::Model& m = registry_.at(name);
      if (!category.empty() &&
          model::to_string(m.category()) != category) {
        continue;
      }
      out_ << name << "  [" << model::to_string(m.category()) << "]\n";
    }
  }

  /// Lazy federation client: peers join on first `fed add`, and every
  /// synced or fetched definition lands in this session's store and
  /// registry via the mirror sink.
  web::FederatedLibrary& fed() {
    if (fed_ == nullptr) {
      fed_ = std::make_unique<web::FederatedLibrary>();
      fed_->set_mirror_sink([this](const model::UserModelDefinition& def) {
        store_.save_model(def);
        registry_.add_or_replace(std::make_shared<model::UserModel>(def));
      });
    }
    return *fed_;
  }

  void cmd_fed(std::istringstream& is) {
    const std::string sub =
        take(is, "fed subcommand (add|remove|hosts|sync|models|fetch)");
    if (sub == "add") {
      const std::uint16_t port =
          web::parse_peer_spec(take(is, "peer HOST:PORT"));
      fed().add_host(port);
      out_ << "added 127.0.0.1:" << port << '\n';
    } else if (sub == "remove") {
      const std::uint16_t port =
          web::parse_peer_spec(take(is, "peer HOST:PORT"));
      const std::string key = "127.0.0.1:" + std::to_string(port);
      out_ << (fed().remove_host(key) ? "removed " : "unknown host ") << key
           << '\n';
    } else if (sub == "hosts") {
      for (const web::FedHostStats& h : fed().hosts()) {
        const char* breaker =
            h.breaker == web::CircuitBreaker::State::kOpen ? "open"
            : h.breaker == web::CircuitBreaker::State::kHalfOpen
                ? "half-open"
                : "closed";
        out_ << h.key << "  breaker=" << breaker << " health=" << h.health
             << " requests=" << h.requests << " failures=" << h.failures
             << " mirrored=" << h.mirrored_models << '\n';
      }
    } else if (sub == "sync") {
      out_ << fed().sync_now() << " host(s) synced\n";
    } else if (sub == "models") {
      std::string query;
      is >> query;
      const web::FedSearchResult r =
          fed().search(query, web::Deadline::never());
      for (const web::FedModelEntry& m : r.models) {
        out_ << m.name << "  replicas=" << m.replicas
             << (m.stale ? " (stale)" : "") << '\n';
      }
      for (const web::FedHostOutcome& h : r.hosts) {
        if (h.status == web::HostStatus::kServed) continue;
        out_ << "# " << h.host << ": " << web::to_string(h.status)
             << (h.error.empty() ? "" : " (" + h.error + ")") << '\n';
      }
      if (r.partial) out_ << "# partial result\n";
    } else if (sub == "fetch") {
      const web::FedFetchResult r =
          fed().fetch_model(take(is, "model name"), web::Deadline::never());
      out_ << "imported '" << r.def.name << "' from " << r.origin;
      if (r.hedged) out_ << (r.hedge_won ? " (hedge won)" : " (hedged)");
      if (r.from_mirror) {
        out_ << " (stale mirror, " << r.staleness_ms << " ms old)";
      }
      out_ << '\n';
    } else {
      throw expr::ExprError("unknown fed subcommand '" + sub +
                            "' (try 'help')");
    }
  }

  void cmd_doc(std::istringstream& is) {
    const model::Model& m = registry_.at(take(is, "model name"));
    out_ << m.name() << " [" << model::to_string(m.category()) << "]\n"
         << m.documentation() << "\nparameters:\n";
    for (const model::ParamSpec& s : m.params()) {
      out_ << "  " << s.name << " = " << s.default_value;
      if (!s.unit.empty()) out_ << " [" << s.unit << "]";
      if (!s.description.empty()) out_ << "  -- " << s.description;
      out_ << '\n';
    }
  }

  std::ostream& out_;
  library::LibraryStore store_;
  model::ModelRegistry registry_;
  /// Compiled-plan engine backing the explore commands (plan cache +
  /// Play memoization shared across a session's explorations).
  engine::EvalEngine engine_;
  std::optional<sheet::Design> design_;
  std::unique_ptr<web::FederatedLibrary> fed_;
};

}  // namespace

int run_repl(std::istream& in, std::ostream& out, library::LibraryStore store,
             const ReplOptions& options) {
  Session session(out, std::move(store));
  int failures = 0;
  std::string line;
  if (options.echo_prompt) out << "powerplay> " << std::flush;
  while (std::getline(in, line)) {
    if (!session.dispatch(line, failures)) break;
    if (options.echo_prompt) out << "powerplay> " << std::flush;
  }
  return failures;
}

}  // namespace powerplay::cli
