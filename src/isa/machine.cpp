#include "isa/machine.hpp"

namespace powerplay::isa {

Machine::Machine(std::vector<Instruction> program, std::size_t memory_words)
    : program_(std::move(program)), memory_(memory_words, 0) {}

std::int32_t Machine::reg(int index) const {
  if (index < 0 || index >= kNumRegisters) {
    throw ExecutionError("register index out of range");
  }
  return regs_[index];
}

void Machine::set_reg(int index, std::int32_t value) {
  if (index < 0 || index >= kNumRegisters) {
    throw ExecutionError("register index out of range");
  }
  regs_[index] = value;
}

std::int32_t Machine::mem(std::uint32_t word_address) const {
  if (word_address >= memory_.size()) {
    throw ExecutionError("memory read out of bounds");
  }
  return memory_[word_address];
}

void Machine::set_mem(std::uint32_t word_address, std::int32_t value) {
  if (word_address >= memory_.size()) {
    throw ExecutionError("memory write out of bounds");
  }
  memory_[word_address] = value;
}

void Machine::reset() {
  regs_.fill(0);
  pc_ = 0;
  halted_ = false;
  profile_ = Profile{};
  last_class_ = InstClass::kOther;
}

std::uint32_t Machine::checked_address(std::int64_t addr) const {
  if (addr < 0 || static_cast<std::uint64_t>(addr) >= memory_.size()) {
    throw ExecutionError("data address out of bounds: " +
                         std::to_string(addr));
  }
  return static_cast<std::uint32_t>(addr);
}

bool Machine::step() {
  if (halted_) return false;
  if (pc_ >= program_.size()) {
    throw ExecutionError("program counter walked off the program at " +
                         std::to_string(pc_));
  }
  const Instruction& inst = program_[pc_];
  const InstClass cls = class_of(inst.op);
  if (profile_.total > 0 && cls != last_class_) ++profile_.class_switches;
  last_class_ = cls;
  ++profile_.by_class[static_cast<std::size_t>(cls)];
  ++profile_.total;

  std::uint32_t next = pc_ + 1;
  auto& r = regs_;
  switch (inst.op) {
    case Opcode::kAdd: r[inst.rd] = r[inst.rs1] + r[inst.rs2]; break;
    case Opcode::kSub: r[inst.rd] = r[inst.rs1] - r[inst.rs2]; break;
    case Opcode::kAnd: r[inst.rd] = r[inst.rs1] & r[inst.rs2]; break;
    case Opcode::kOr: r[inst.rd] = r[inst.rs1] | r[inst.rs2]; break;
    case Opcode::kXor: r[inst.rd] = r[inst.rs1] ^ r[inst.rs2]; break;
    case Opcode::kShl:
      r[inst.rd] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(r[inst.rs1]) << (r[inst.rs2] & 31));
      break;
    case Opcode::kShr: r[inst.rd] = r[inst.rs1] >> (r[inst.rs2] & 31); break;
    case Opcode::kAddi: r[inst.rd] = r[inst.rs1] + inst.imm; break;
    case Opcode::kLi: r[inst.rd] = inst.imm; break;
    case Opcode::kMov: r[inst.rd] = r[inst.rs1]; break;
    case Opcode::kMul: r[inst.rd] = r[inst.rs1] * r[inst.rs2]; break;
    case Opcode::kLd: {
      const std::uint32_t addr =
          checked_address(static_cast<std::int64_t>(r[inst.rs1]) + inst.imm);
      r[inst.rd] = memory_[addr];
      if (observer_) observer_(MemAccess{addr, /*is_write=*/false});
      break;
    }
    case Opcode::kSt: {
      const std::uint32_t addr =
          checked_address(static_cast<std::int64_t>(r[inst.rs1]) + inst.imm);
      memory_[addr] = r[inst.rs2];
      if (observer_) observer_(MemAccess{addr, /*is_write=*/true});
      break;
    }
    case Opcode::kBeq:
      if (r[inst.rs1] == r[inst.rs2]) next = inst.imm;
      break;
    case Opcode::kBne:
      if (r[inst.rs1] != r[inst.rs2]) next = inst.imm;
      break;
    case Opcode::kBlt:
      if (r[inst.rs1] < r[inst.rs2]) next = inst.imm;
      break;
    case Opcode::kBge:
      if (r[inst.rs1] >= r[inst.rs2]) next = inst.imm;
      break;
    case Opcode::kJmp: next = inst.imm; break;
    case Opcode::kNop: break;
    case Opcode::kHalt:
      halted_ = true;
      return false;
  }
  pc_ = next;
  return true;
}

void Machine::run(std::uint64_t max_steps) {
  std::uint64_t budget = max_steps;
  while (!halted_) {
    if (budget-- == 0) {
      throw ExecutionError("step budget exhausted after " +
                           std::to_string(max_steps) + " instructions");
    }
    step();
  }
}

}  // namespace powerplay::isa
