// isa.hpp — the "fictitious processor" used for instruction-level power
// analysis (paper §Models, Programmable Processors).
//
// Ong and Yan demonstrated orders-of-magnitude energy variance across
// sorting algorithms on a fictitious processor; the paper's EQ 12 model
// consumes exactly the per-instruction counts such a machine produces.
// This is a small 16-register, word-addressed load/store machine with an
// assembler (src/isa/assembler.hpp), an interpreting simulator with
// profiling and memory tracing (src/isa/machine.hpp), and canned sorting
// workloads (src/isa/programs.hpp).  The profiler's class counts map 1:1
// onto models::InstructionProcessorModel's parameters, and its memory
// trace feeds the Dinero-style cache simulator in src/cachesim.
#pragma once

#include <cstdint>
#include <string>

namespace powerplay::isa {

inline constexpr int kNumRegisters = 16;

enum class Opcode : std::uint8_t {
  // ALU class
  kAdd,   ///< add  rd, rs1, rs2
  kSub,   ///< sub  rd, rs1, rs2
  kAnd,   ///< and  rd, rs1, rs2
  kOr,    ///< or   rd, rs1, rs2
  kXor,   ///< xor  rd, rs1, rs2
  kShl,   ///< shl  rd, rs1, rs2
  kShr,   ///< shr  rd, rs1, rs2   (arithmetic shift right)
  kAddi,  ///< addi rd, rs1, imm
  kLi,    ///< li   rd, imm
  kMov,   ///< mov  rd, rs1
  // Multiply class
  kMul,   ///< mul  rd, rs1, rs2
  // Memory classes
  kLd,    ///< ld   rd, rs1, imm   (rd = mem[rs1 + imm])
  kSt,    ///< st   rs2, rs1, imm  (mem[rs1 + imm] = rs2)
  // Branch class
  kBeq,   ///< beq  rs1, rs2, label
  kBne,   ///< bne  rs1, rs2, label
  kBlt,   ///< blt  rs1, rs2, label
  kBge,   ///< bge  rs1, rs2, label
  kJmp,   ///< jmp  label
  // Other
  kNop,
  kHalt,
};

/// Instruction classes matching models::InstClass ordering:
/// alu, mul, load, store, branch, other.
enum class InstClass : std::uint8_t {
  kAlu = 0,
  kMul,
  kLoad,
  kStore,
  kBranch,
  kOther,
};
inline constexpr std::size_t kNumInstClasses = 6;

InstClass class_of(Opcode op);

/// Decoded instruction.  Field meaning depends on the opcode; branch and
/// jump targets are absolute instruction indices after assembly.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;  ///< immediate or branch target
};

std::string to_string(Opcode op);
std::string to_string(InstClass c);
std::string to_string(const Instruction& inst);

}  // namespace powerplay::isa
