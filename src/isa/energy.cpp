#include "isa/energy.hpp"

namespace powerplay::isa {

model::MapParamReader instruction_model_params(const Profile& profile,
                                               const ModelParams& params) {
  model::MapParamReader out;
  out.set("n_alu", static_cast<double>(profile.count(InstClass::kAlu)));
  out.set("n_mul", static_cast<double>(profile.count(InstClass::kMul)));
  out.set("n_load", static_cast<double>(profile.count(InstClass::kLoad)));
  out.set("n_store", static_cast<double>(profile.count(InstClass::kStore)));
  out.set("n_branch",
          static_cast<double>(profile.count(InstClass::kBranch)));
  out.set("n_other", static_cast<double>(profile.count(InstClass::kOther)));
  out.set("cpi", params.cpi);
  out.set("f", params.f_hz);
  out.set("vdd", params.vdd);
  out.set("n_misses", static_cast<double>(params.cache_misses));
  out.set("miss_cycles", params.miss_cycles);
  out.set("e_miss", 0.0);
  out.set("n_switches", static_cast<double>(profile.class_switches));
  out.set("e_switch", 0.0);
  return out;
}

}  // namespace powerplay::isa
