#include "isa/isa.hpp"

namespace powerplay::isa {

InstClass class_of(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAddi:
    case Opcode::kLi:
    case Opcode::kMov:
      return InstClass::kAlu;
    case Opcode::kMul:
      return InstClass::kMul;
    case Opcode::kLd:
      return InstClass::kLoad;
    case Opcode::kSt:
      return InstClass::kStore;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kJmp:
      return InstClass::kBranch;
    case Opcode::kNop:
    case Opcode::kHalt:
      return InstClass::kOther;
  }
  return InstClass::kOther;
}

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddi: return "addi";
    case Opcode::kLi: return "li";
    case Opcode::kMov: return "mov";
    case Opcode::kMul: return "mul";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJmp: return "jmp";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

std::string to_string(InstClass c) {
  switch (c) {
    case InstClass::kAlu: return "alu";
    case InstClass::kMul: return "mul";
    case InstClass::kLoad: return "load";
    case InstClass::kStore: return "store";
    case InstClass::kBranch: return "branch";
    case InstClass::kOther: return "other";
  }
  return "?";
}

std::string to_string(const Instruction& inst) {
  std::string out = to_string(inst.op);
  auto reg = [](int r) { return " r" + std::to_string(r); };
  switch (inst.op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMul:
      return out + reg(inst.rd) + "," + reg(inst.rs1) + "," + reg(inst.rs2);
    case Opcode::kAddi:
      return out + reg(inst.rd) + "," + reg(inst.rs1) + ", " +
             std::to_string(inst.imm);
    case Opcode::kLi:
      return out + reg(inst.rd) + ", " + std::to_string(inst.imm);
    case Opcode::kMov:
      return out + reg(inst.rd) + "," + reg(inst.rs1);
    case Opcode::kLd:
      return out + reg(inst.rd) + "," + reg(inst.rs1) + ", " +
             std::to_string(inst.imm);
    case Opcode::kSt:
      return out + reg(inst.rs2) + "," + reg(inst.rs1) + ", " +
             std::to_string(inst.imm);
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
      return out + reg(inst.rs1) + "," + reg(inst.rs2) + ", @" +
             std::to_string(inst.imm);
    case Opcode::kJmp:
      return out + " @" + std::to_string(inst.imm);
    case Opcode::kNop:
    case Opcode::kHalt:
      return out;
  }
  return out;
}

}  // namespace powerplay::isa
