#include "isa/programs.hpp"

namespace powerplay::isa {

namespace {

std::string with_n(const char* text, int n) {
  // Substitute every "{n}" in the template with the literal length.
  std::string out = text;
  const std::string needle = "{n}";
  const std::string value = std::to_string(n);
  std::size_t pos = 0;
  while ((pos = out.find(needle, pos)) != std::string::npos) {
    out.replace(pos, needle.size(), value);
    pos += value.size();
  }
  return out;
}

}  // namespace

std::string bubble_sort_source(int n) {
  // Classic n^2 compare-and-swap sweeps; worst case for both branch and
  // store traffic, which is what makes it the energy outlier.
  return with_n(R"(
; bubble sort, array at words [0, {n})
        li   r1, {n}        ; n
        addi r4, r1, -1     ; n-1
        li   r3, 0          ; i
outer:  bge  r3, r4, done
        li   r5, 0          ; j
        sub  r6, r4, r3     ; sweep limit n-1-i
inner:  bge  r5, r6, iend
        ld   r7, r5, 0      ; a[j]
        ld   r8, r5, 1      ; a[j+1]
        bge  r8, r7, noswap
        st   r8, r5, 0
        st   r7, r5, 1
noswap: addi r5, r5, 1
        jmp  inner
iend:   addi r3, r3, 1
        jmp  outer
done:   halt
)",
                n);
}

std::string selection_sort_source(int n) {
  // Also n^2 compares, but only n-1 swaps: far fewer stores than bubble.
  return with_n(R"(
; selection sort, array at words [0, {n})
        li   r1, {n}
        addi r4, r1, -1     ; n-1
        li   r3, 0          ; i
outer:  bge  r3, r4, done
        mov  r5, r3         ; min index
        ld   r6, r3, 0      ; min value
        addi r7, r3, 1      ; j
inner:  bge  r7, r1, iend
        ld   r8, r7, 0
        bge  r8, r6, keep
        mov  r5, r7
        mov  r6, r8
keep:   addi r7, r7, 1
        jmp  inner
iend:   ld   r9, r3, 0
        st   r6, r3, 0
        st   r9, r5, 0
        addi r3, r3, 1
        jmp  outer
done:   halt
)",
                n);
}

std::string insertion_sort_source(int n) {
  // Adaptive: nearly free on presorted input, n^2 shifts on reversed.
  return with_n(R"(
; insertion sort, array at words [0, {n})
        li   r1, {n}
        li   r0, 0
        li   r3, 1          ; i
outer:  bge  r3, r1, done
        ld   r5, r3, 0      ; key
        addi r6, r3, -1     ; j
inner:  blt  r6, r0, place
        ld   r7, r6, 0
        bge  r5, r7, place  ; stop once key >= a[j]
        st   r7, r6, 1      ; shift a[j] right
        addi r6, r6, -1
        jmp  inner
place:  st   r5, r6, 1      ; a[j+1] = key
        addi r3, r3, 1
        jmp  outer
done:   halt
)",
                n);
}

std::string merge_sort_source(int n) {
  // Bottom-up merge sort; scratch buffer at words [{n}, 2*{n}).
  return with_n(R"(
; bottom-up merge sort, array at [0, {n}), scratch at [{n}, 2*{n})
        li   r1, {n}
        li   r2, 1          ; width
        li   r0, 0
wloop:  bge  r2, r1, wdone
        li   r3, 0          ; run start i
iloop:  bge  r3, r1, icopy
        add  r4, r3, r2     ; mid = min(i+width, n)
        blt  r4, r1, midok
        mov  r4, r1
midok:  add  r5, r2, r2     ; right = min(i+2*width, n)
        add  r5, r5, r3
        blt  r5, r1, rgtok
        mov  r5, r1
rgtok:  mov  r6, r3         ; l
        mov  r7, r4         ; r
        mov  r8, r3         ; k
merge:  bge  r8, r5, mdone
        bge  r6, r4, right  ; left run exhausted
        bge  r7, r5, left   ; right run exhausted
        ld   r9, r6, 0
        ld   r10, r7, 0
        blt  r10, r9, right ; a[r] < a[l]: take right (stable otherwise)
left:   ld   r9, r6, 0
        st   r9, r8, {n}
        addi r6, r6, 1
        jmp  madv
right:  ld   r10, r7, 0
        st   r10, r8, {n}
        addi r7, r7, 1
madv:   addi r8, r8, 1
        jmp  merge
mdone:  add  r11, r2, r2    ; i += 2*width
        add  r3, r3, r11
        jmp  iloop
icopy:  li   r12, 0         ; copy scratch back
cloop:  bge  r12, r1, cdone
        ld   r9, r12, {n}
        st   r9, r12, 0
        addi r12, r12, 1
        jmp  cloop
cdone:  add  r2, r2, r2     ; width *= 2
        jmp  wloop
wdone:  halt
)",
                n);
}

std::string fir_filter_source(int n_samples, int taps) {
  std::string src = R"(
; FIR filter: x at [0, {n}), h at [{n}, {n}+{t}), y at [{n}+{t}, ...)
        li   r1, {n}
        li   r2, {t}
        li   r0, 0
        sub  r3, r1, r2     ; output count
        li   r4, 0          ; i
outer:  bge  r4, r3, done
        li   r5, 0          ; acc
        li   r6, 0          ; j
inner:  bge  r6, r2, iend
        add  r7, r4, r6
        ld   r8, r7, 0      ; x[i+j]
        ld   r9, r6, {n}    ; h[j]
        mul  r10, r8, r9
        add  r5, r5, r10
        addi r6, r6, 1
        jmp  inner
iend:   st   r5, r4, {nt}   ; y[i]
        addi r4, r4, 1
        jmp  outer
done:   halt
)";
  auto replace_all = [&](const std::string& needle, const std::string& v) {
    std::size_t pos = 0;
    while ((pos = src.find(needle, pos)) != std::string::npos) {
      src.replace(pos, needle.size(), v);
      pos += v.size();
    }
  };
  replace_all("{nt}", std::to_string(n_samples + taps));
  replace_all("{n}", std::to_string(n_samples));
  replace_all("{t}", std::to_string(taps));
  return src;
}

std::vector<std::int32_t> fir_reference(std::span<const std::int32_t> x,
                                        std::span<const std::int32_t> h) {
  std::vector<std::int32_t> y;
  if (x.size() < h.size()) return y;
  y.reserve(x.size() - h.size());
  for (std::size_t i = 0; i + h.size() <= x.size() - 0 &&
                          i < x.size() - h.size();
       ++i) {
    std::int32_t acc = 0;
    for (std::size_t j = 0; j < h.size(); ++j) acc += h[j] * x[i + j];
    y.push_back(acc);
  }
  return y;
}

std::string vq_decode_source(int n_pixels) {
  // codes at [0, n/16); lut at base_lut = n/16; y at base_lut + 4096.
  const int base_lut = n_pixels / 16;
  const int base_out = base_lut + 4096;
  std::string src = R"(
; VQ decode: y[i] = lut[codes[i/16]*16 + i%16]
        li   r1, {n}
        li   r2, 15
        li   r3, 4
        li   r4, 0          ; i
loop:   bge  r4, r1, done
        shr  r5, r4, r3     ; i / 16
        ld   r6, r5, 0      ; code
        shl  r7, r6, r3     ; code * 16
        and  r8, r4, r2     ; i % 16
        add  r7, r7, r8
        ld   r9, r7, {lut}  ; lut[...]
        st   r9, r4, {out}  ; y[i]
        addi r4, r4, 1
        jmp  loop
done:   halt
)";
  auto replace_all = [&](const std::string& needle, const std::string& v) {
    std::size_t pos = 0;
    while ((pos = src.find(needle, pos)) != std::string::npos) {
      src.replace(pos, needle.size(), v);
      pos += v.size();
    }
  };
  replace_all("{lut}", std::to_string(base_lut));
  replace_all("{out}", std::to_string(base_out));
  replace_all("{n}", std::to_string(n_pixels));
  return src;
}

std::vector<std::int32_t> vq_reference(std::span<const std::int32_t> codes,
                                       std::span<const std::int32_t> lut,
                                       int n_pixels) {
  std::vector<std::int32_t> y;
  y.reserve(n_pixels);
  for (int i = 0; i < n_pixels; ++i) {
    const std::int32_t code = codes[i / 16];
    y.push_back(lut[code * 16 + (i % 16)]);
  }
  return y;
}

std::vector<SortProgram> sorting_suite(int n) {
  return {
      {"bubble", bubble_sort_source(n), static_cast<std::size_t>(n) + 16},
      {"selection", selection_sort_source(n),
       static_cast<std::size_t>(n) + 16},
      {"insertion", insertion_sort_source(n),
       static_cast<std::size_t>(n) + 16},
      {"merge", merge_sort_source(n), 2 * static_cast<std::size_t>(n) + 16},
  };
}

void load_array(Machine& m, std::span<const std::int32_t> data,
                std::uint32_t base) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    m.set_mem(base + static_cast<std::uint32_t>(i), data[i]);
  }
}

std::vector<std::int32_t> read_array(const Machine& m, std::size_t n,
                                     std::uint32_t base) {
  std::vector<std::int32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(m.mem(base + static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::vector<std::int32_t> random_data(int n, std::uint32_t seed) {
  std::vector<std::int32_t> out;
  out.reserve(n);
  std::uint32_t x = seed == 0 ? 0x9e3779b9u : seed;
  for (int i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    out.push_back(static_cast<std::int32_t>(x % 100000));
  }
  return out;
}

std::vector<std::int32_t> ascending_data(int n) {
  std::vector<std::int32_t> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

std::vector<std::int32_t> descending_data(int n) {
  std::vector<std::int32_t> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(n - i);
  return out;
}

}  // namespace powerplay::isa
