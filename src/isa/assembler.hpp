// assembler.hpp — two-pass assembler for the fictitious processor.
//
// Syntax, one instruction per line:
//
//   ; comment (also '#')
//   start:  li   r1, 0          ; labels end with ':'
//           ld   r2, r1, 100    ; r2 = mem[r1 + 100]
//           blt  r1, r3, start
//           halt
//
// Registers are r0..r15; immediates are signed decimal; branch/jump
// targets are label names resolved on the second pass.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace powerplay::isa {

class AssemblyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Assemble source text to an instruction vector.
/// Throws AssemblyError with a line number on any problem (unknown
/// mnemonic, bad register, undefined or duplicate label, wrong operand
/// count).
std::vector<Instruction> assemble(const std::string& source);

/// Disassemble back to text (labels lost; targets shown as @index).
std::string disassemble(const std::vector<Instruction>& program);

}  // namespace powerplay::isa
