// machine.hpp — interpreting simulator with profiling and memory tracing.
//
// The machine executes an assembled program, counting executions per
// instruction class (the SPIX/Pixie role the paper assigns to profilers)
// and optionally streaming data-memory accesses to an observer (the
// Dinero role — src/cachesim consumes this trace).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "isa/isa.hpp"

namespace powerplay::isa {

class ExecutionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One data-memory access, in *word* addresses.
struct MemAccess {
  std::uint32_t word_address;
  bool is_write;
};

using MemObserver = std::function<void(const MemAccess&)>;

/// Per-class execution counts — the profiler output.
struct Profile {
  std::array<std::uint64_t, kNumInstClasses> by_class{};
  std::uint64_t total = 0;
  /// Consecutive instructions of *different* classes (Tiwari's
  /// inter-instruction circuit-state overhead counts one per switch).
  std::uint64_t class_switches = 0;

  [[nodiscard]] std::uint64_t count(InstClass c) const {
    return by_class[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t loads() const { return count(InstClass::kLoad); }
  [[nodiscard]] std::uint64_t stores() const {
    return count(InstClass::kStore);
  }
};

class Machine {
 public:
  /// `memory_words` is the data-memory size in 32-bit words.
  explicit Machine(std::vector<Instruction> program,
                   std::size_t memory_words = 1 << 16);

  /// Run until HALT.  Throws ExecutionError if the step budget is
  /// exhausted (runaway loop), the PC walks off the program, or a memory
  /// access is out of bounds.
  void run(std::uint64_t max_steps = 100'000'000);

  /// Single step; returns false once halted.
  bool step();

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] const Profile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t steps() const { return profile_.total; }

  [[nodiscard]] std::int32_t reg(int index) const;
  void set_reg(int index, std::int32_t value);

  [[nodiscard]] std::int32_t mem(std::uint32_t word_address) const;
  void set_mem(std::uint32_t word_address, std::int32_t value);
  [[nodiscard]] std::size_t memory_words() const { return memory_.size(); }

  /// Observer invoked on every data-memory access while running.
  void set_mem_observer(MemObserver observer) {
    observer_ = std::move(observer);
  }

  /// Reset PC, registers, profile and halt flag (memory is preserved so
  /// a workload can be re-run on its own output).
  void reset();

 private:
  std::uint32_t checked_address(std::int64_t addr) const;

  std::vector<Instruction> program_;
  std::vector<std::int32_t> memory_;
  std::array<std::int32_t, kNumRegisters> regs_{};
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  Profile profile_;
  InstClass last_class_ = InstClass::kOther;
  MemObserver observer_;
};

}  // namespace powerplay::isa
