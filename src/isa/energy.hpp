// energy.hpp — bridge from profiler output to the EQ 12 power model.
//
// The paper's refinement ladder: run the coded algorithm under a
// profiler (SPIX/Pixie → our Machine profile), optionally a cache
// simulator (Dinero → src/cachesim), and feed the counts to the
// instruction-level energy model.  This header produces the parameter
// set models::InstructionProcessorModel expects.
#pragma once

#include "isa/machine.hpp"
#include "model/param.hpp"

namespace powerplay::isa {

struct ModelParams {
  double cpi = 1.0;
  double f_hz = 25e6;
  double vdd = 3.3;
  std::uint64_t cache_misses = 0;
  double miss_cycles = 10;
};

/// Build the EQ 12 parameter map from a profile.
model::MapParamReader instruction_model_params(const Profile& profile,
                                               const ModelParams& params);

}  // namespace powerplay::isa
