#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>

namespace powerplay::isa {

namespace {

struct SourceLine {
  int number;                       ///< 1-based line in the original text
  std::optional<std::string> label; ///< label defined on this line
  std::string mnemonic;             ///< empty for label-only/blank lines
  std::vector<std::string> operands;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw AssemblyError("line " + std::to_string(line) + ": " + message);
}

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

SourceLine parse_line(const std::string& raw, int number) {
  SourceLine out;
  out.number = number;
  std::string text = raw;
  // Strip comments.
  for (char marker : {';', '#'}) {
    const auto pos = text.find(marker);
    if (pos != std::string::npos) text = text.substr(0, pos);
  }
  text = strip(text);
  if (text.empty()) return out;

  // Label?
  const auto colon = text.find(':');
  if (colon != std::string::npos) {
    const std::string label = strip(text.substr(0, colon));
    if (label.empty()) fail(number, "empty label");
    for (char c : label) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        fail(number, "bad label character in '" + label + "'");
      }
    }
    out.label = label;
    text = strip(text.substr(colon + 1));
    if (text.empty()) return out;
  }

  // Mnemonic + comma-separated operands.
  std::istringstream is(text);
  is >> out.mnemonic;
  out.mnemonic = lower(out.mnemonic);
  std::string rest;
  std::getline(is, rest);
  rest = strip(rest);
  if (!rest.empty()) {
    std::string current;
    for (char c : rest) {
      if (c == ',') {
        out.operands.push_back(strip(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out.operands.push_back(strip(current));
  }
  return out;
}

std::uint8_t parse_register(const std::string& text, int line) {
  const std::string t = lower(strip(text));
  if (t.size() < 2 || t[0] != 'r') fail(line, "expected register, got '" + text + "'");
  int idx = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
      fail(line, "expected register, got '" + text + "'");
    }
    idx = idx * 10 + (t[i] - '0');
  }
  if (idx >= kNumRegisters) {
    fail(line, "register out of range: '" + text + "'");
  }
  return static_cast<std::uint8_t>(idx);
}

std::int32_t parse_immediate(const std::string& text, int line) {
  const std::string t = strip(text);
  if (t.empty()) fail(line, "expected immediate");
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(t, &pos, 0);
  } catch (const std::exception&) {
    fail(line, "bad immediate '" + text + "'");
  }
  if (pos != t.size()) fail(line, "bad immediate '" + text + "'");
  if (v < INT32_MIN || v > INT32_MAX) fail(line, "immediate overflow");
  return static_cast<std::int32_t>(v);
}

struct OpSpec {
  Opcode op;
  enum class Form { kRRR, kRRI, kRI, kRR, kBranch, kJmp, kNone } form;
};

const std::map<std::string, OpSpec>& mnemonics() {
  using F = OpSpec::Form;
  static const std::map<std::string, OpSpec> table = {
      {"add", {Opcode::kAdd, F::kRRR}},   {"sub", {Opcode::kSub, F::kRRR}},
      {"and", {Opcode::kAnd, F::kRRR}},   {"or", {Opcode::kOr, F::kRRR}},
      {"xor", {Opcode::kXor, F::kRRR}},   {"shl", {Opcode::kShl, F::kRRR}},
      {"shr", {Opcode::kShr, F::kRRR}},   {"mul", {Opcode::kMul, F::kRRR}},
      {"addi", {Opcode::kAddi, F::kRRI}}, {"li", {Opcode::kLi, F::kRI}},
      {"mov", {Opcode::kMov, F::kRR}},    {"ld", {Opcode::kLd, F::kRRI}},
      {"st", {Opcode::kSt, F::kRRI}},     {"beq", {Opcode::kBeq, F::kBranch}},
      {"bne", {Opcode::kBne, F::kBranch}},{"blt", {Opcode::kBlt, F::kBranch}},
      {"bge", {Opcode::kBge, F::kBranch}},{"jmp", {Opcode::kJmp, F::kJmp}},
      {"nop", {Opcode::kNop, F::kNone}},  {"halt", {Opcode::kHalt, F::kNone}},
  };
  return table;
}

}  // namespace

std::vector<Instruction> assemble(const std::string& source) {
  // Pass 1: parse lines, assign instruction indices, collect labels.
  std::vector<SourceLine> lines;
  std::map<std::string, int> labels;
  {
    std::istringstream is(source);
    std::string raw;
    int number = 0;
    int index = 0;
    while (std::getline(is, raw)) {
      ++number;
      SourceLine line = parse_line(raw, number);
      if (line.label) {
        if (labels.contains(*line.label)) {
          fail(number, "duplicate label '" + *line.label + "'");
        }
        labels[*line.label] = index;
      }
      if (!line.mnemonic.empty()) {
        ++index;
        lines.push_back(std::move(line));
      }
    }
  }

  // Pass 2: encode.
  std::vector<Instruction> program;
  program.reserve(lines.size());
  for (const SourceLine& line : lines) {
    auto it = mnemonics().find(line.mnemonic);
    if (it == mnemonics().end()) {
      fail(line.number, "unknown mnemonic '" + line.mnemonic + "'");
    }
    const OpSpec& spec = it->second;
    Instruction inst;
    inst.op = spec.op;
    auto need = [&](std::size_t n) {
      if (line.operands.size() != n) {
        fail(line.number, "'" + line.mnemonic + "' expects " +
                              std::to_string(n) + " operand(s), got " +
                              std::to_string(line.operands.size()));
      }
    };
    auto target = [&](const std::string& name) -> std::int32_t {
      auto lt = labels.find(strip(name));
      if (lt == labels.end()) {
        fail(line.number, "undefined label '" + name + "'");
      }
      return lt->second;
    };
    using F = OpSpec::Form;
    switch (spec.form) {
      case F::kRRR:
        need(3);
        inst.rd = parse_register(line.operands[0], line.number);
        inst.rs1 = parse_register(line.operands[1], line.number);
        inst.rs2 = parse_register(line.operands[2], line.number);
        break;
      case F::kRRI:
        need(3);
        if (spec.op == Opcode::kSt) {
          // st rs2, rs1, imm — value register first, like the others.
          inst.rs2 = parse_register(line.operands[0], line.number);
        } else {
          inst.rd = parse_register(line.operands[0], line.number);
        }
        inst.rs1 = parse_register(line.operands[1], line.number);
        inst.imm = parse_immediate(line.operands[2], line.number);
        break;
      case F::kRI:
        need(2);
        inst.rd = parse_register(line.operands[0], line.number);
        inst.imm = parse_immediate(line.operands[1], line.number);
        break;
      case F::kRR:
        need(2);
        inst.rd = parse_register(line.operands[0], line.number);
        inst.rs1 = parse_register(line.operands[1], line.number);
        break;
      case F::kBranch:
        need(3);
        inst.rs1 = parse_register(line.operands[0], line.number);
        inst.rs2 = parse_register(line.operands[1], line.number);
        inst.imm = target(line.operands[2]);
        break;
      case F::kJmp:
        need(1);
        inst.imm = target(line.operands[0]);
        break;
      case F::kNone:
        need(0);
        break;
    }
    program.push_back(inst);
  }
  return program;
}

std::string disassemble(const std::vector<Instruction>& program) {
  std::string out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    out += std::to_string(i) + ":\t" + to_string(program[i]) + "\n";
  }
  return out;
}

}  // namespace powerplay::isa
