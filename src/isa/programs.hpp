// programs.hpp — canned workloads for the fictitious processor.
//
// The sorting suite reproduces the Ong & Yan experiment the paper cites:
// "there can be orders of magnitude variance in power consumption for
// different sorting algorithms".  Each generator emits assembly sorting
// n words ascending, with the array at data-memory word 0.  Merge sort
// additionally uses words [n, 2n) as scratch, so size the machine
// accordingly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/machine.hpp"

namespace powerplay::isa {

std::string bubble_sort_source(int n);
std::string selection_sort_source(int n);
std::string insertion_sort_source(int n);
std::string merge_sort_source(int n);

struct SortProgram {
  std::string name;
  std::string source;
  std::size_t memory_words;  ///< minimum data memory required
};

/// All four sorts for a given n, in canonical order
/// (bubble, selection, insertion, merge).
std::vector<SortProgram> sorting_suite(int n);

/// FIR filter workload (the DSP kernel of the paper's application
/// domain): y[i] = sum_j h[j] * x[i+j] for i in [0, n_samples - taps).
/// Memory layout: x at [0, n), h at [n, n+taps), y at [n+taps, ...).
/// A multiply-heavy instruction mix, complementing the sorts'
/// branch/memory mixes in the EQ 12 experiments.
std::string fir_filter_source(int n_samples, int taps);

/// Reference FIR for verifying machine output.
std::vector<std::int32_t> fir_reference(std::span<const std::int32_t> x,
                                        std::span<const std::int32_t> h);

/// The paper's own workload, in software: VQ luminance decompression.
/// For each of n_pixels output pixels i:
///   code = codes[i / 16];  y[i] = lut[code * 16 + (i % 16)]
/// Memory layout: codes at [0, n/16), LUT (4096 words) at n/16,
/// output at n/16 + 4096.  Used by bench_hw_vs_sw to contrast the EQ 12
/// software estimate with the Figure 2/3 dedicated-hardware spreadsheet.
std::string vq_decode_source(int n_pixels);

/// Reference decode for verifying machine output.
std::vector<std::int32_t> vq_reference(std::span<const std::int32_t> codes,
                                       std::span<const std::int32_t> lut,
                                       int n_pixels);

// --- host-side data helpers -------------------------------------------------

void load_array(Machine& m, std::span<const std::int32_t> data,
                std::uint32_t base = 0);
std::vector<std::int32_t> read_array(const Machine& m, std::size_t n,
                                     std::uint32_t base = 0);

/// Deterministic pseudo-random data (xorshift; same seed → same data).
std::vector<std::int32_t> random_data(int n, std::uint32_t seed);
std::vector<std::int32_t> ascending_data(int n);
std::vector<std::int32_t> descending_data(int n);

}  // namespace powerplay::isa
