#include "models/system.hpp"

#include "expr/ast.hpp"

namespace powerplay::models {

using namespace units;
using model::CapTerm;
using model::Category;
using model::OperatingPoint;
using model::StaticTerm;

DataSheetComponentModel::DataSheetComponentModel()
    : Model("datasheet_component", Category::kSystem,
            "Commodity component whose power comes straight from a "
            "data-sheet or measurement: P = p_typical * duty.  No voltage "
            "scaling is applied; the figure is an end-to-end measurement.",
            {{"p_typical", "typical/measured power", 0.1, "W", 0, 1e6},
             {"duty", "fraction of time active", 1.0, "", 0, 1},
             {model::kParamVdd, "nominal rail (bookkeeping only)", 5.0, "V",
              0, 100},
             {model::kParamFreq, "unused", 0.0, "Hz", 0, 1e12}}) {}

Estimate DataSheetComponentModel::evaluate(const ParamReader& p) const {
  const double watts = param(p, "p_typical") * param(p, "duty");
  const Voltage vdd{param(p, model::kParamVdd)};
  if (vdd.si() <= 0.0) {
    throw expr::ExprError("datasheet_component: vdd must be > 0");
  }
  return make_estimate(
      {}, {StaticTerm{"data-sheet power", Current{watts / vdd.si()}}},
      OperatingPoint{vdd, Frequency{0}});
}

FpgaModel::FpgaModel(Capacitance c_per_cell, Capacitance c_fabric_per_cell)
    : Model("fpga", Category::kSystem,
            "FPGA macro-model (paper: future work; first cut consistent "
            "with EQ 1): C_T = cells_used * alpha * (C_cell + C_fabric), "
            "where C_fabric lumps the programmable-interconnect load per "
            "active cell, plus a static configuration/leakage current.",
            {{"cells_used", "occupied logic cells", 1000, "", 1, 1e7, true},
             {"alpha", "average cell output activity", 0.15, "", 0, 1},
             {"i_static", "configuration + leakage current", 5e-3, "A", 0, 10},
             {model::kParamVdd, "core supply", 5.0, "V", 0, 40},
             {model::kParamFreq, "system clock", 0.0, "Hz", 0, 1e12}}),
      c_per_cell_(c_per_cell),
      c_fabric_per_cell_(c_fabric_per_cell) {}

Estimate FpgaModel::evaluate(const ParamReader& p) const {
  const double cells = param(p, "cells_used");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = (c_per_cell_ + c_fabric_per_cell_) * (cells * alpha);
  return make_estimate(
      {CapTerm{"logic cells + fabric", c_t}},
      {StaticTerm{"configuration/leakage", Current{param(p, "i_static")}}},
      operating_point(p),
      Area{cells * 4e-9}, Time{0});
}

ServoMotorModel::ServoMotorModel()
    : Model("servo_motor", Category::kSystem,
            "Electro-mechanical actuator: mechanical power tau*omega "
            "drawn through the motor efficiency, plus idle bias current; "
            "duty-gated.  Systems are mixed-mode (digital, analog, "
            "electro-mechanical) and this is the third kind.",
            {{"torque", "load torque", 0.01, "N*m", 0, 100},
             {"speed", "shaft speed", 50.0, "rad/s", 0, 1e5},
             {"eta", "motor efficiency", 0.6, "", 0.01, 1.0},
             {"duty", "fraction of time actuating", 0.1, "", 0, 1},
             {"i_idle", "idle/holding current", 5e-3, "A", 0, 100},
             {model::kParamVdd, "motor supply", 6.0, "V", 0, 100},
             {model::kParamFreq, "unused", 0.0, "Hz", 0, 1e12}}) {}

Estimate ServoMotorModel::evaluate(const ParamReader& p) const {
  const double mech_watts =
      param(p, "torque") * param(p, "speed") / param(p, "eta");
  const double watts = param(p, "duty") * mech_watts;
  const Voltage vdd{param(p, model::kParamVdd)};
  if (vdd.si() <= 0.0) {
    throw expr::ExprError("servo_motor: vdd must be > 0");
  }
  return make_estimate(
      {},
      {StaticTerm{"actuation", Current{watts / vdd.si()}},
       StaticTerm{"idle bias", Current{param(p, "i_idle")}}},
      OperatingPoint{vdd, Frequency{0}});
}

BacklitDisplayModel::BacklitDisplayModel(Capacitance c_per_m2_per_hz)
    : Model("backlit_display", Category::kSystem,
            "Backlit LCD: panel drive capacitance scales with area and "
            "refresh rate; the backlight (the dominating term in a "
            "portable terminal) is a duty-gated constant power.",
            {{"area", "panel area", 0.01, "m^2", 0, 10},
             {"refresh", "refresh rate", 60.0, "Hz", 0, 1e4},
             {"p_backlight", "backlight power when lit", 1.0, "W", 0, 1e3},
             {"backlight_duty", "fraction of time lit", 1.0, "", 0, 1},
             {model::kParamVdd, "panel drive voltage", 12.0, "V", 0, 100},
             {model::kParamFreq, "unused (refresh drives the panel)", 0.0,
              "Hz", 0, 1e12}}),
      c_per_m2_per_hz_(c_per_m2_per_hz) {}

Estimate BacklitDisplayModel::evaluate(const ParamReader& p) const {
  const Voltage vdd{param(p, model::kParamVdd)};
  if (vdd.si() <= 0.0) {
    throw expr::ExprError("backlit_display: vdd must be > 0");
  }
  // Panel drive: treat as EQ 1 capacitance switching at the refresh
  // rate, scaled by area.
  const Capacitance c_panel =
      c_per_m2_per_hz_ * (param(p, "area") * param(p, "refresh"));
  const double backlight_watts =
      param(p, "p_backlight") * param(p, "backlight_duty");
  return make_estimate(
      {CapTerm{"panel drive", c_panel}},
      {StaticTerm{"backlight", Current{backlight_watts / vdd.si()}}},
      OperatingPoint{vdd, Frequency{1.0}});  // refresh folded into c_panel
}

}  // namespace powerplay::models
