#include "models/converter.hpp"

#include "expr/ast.hpp"

namespace powerplay::models {

using namespace units;
using model::Category;
using model::OperatingPoint;
using model::StaticTerm;

Power converter_input_power(Power p_load, double efficiency) {
  if (efficiency <= 0.0 || efficiency > 1.0) {
    throw expr::ExprError(
        "converter efficiency must be in (0, 1], got " +
        std::to_string(efficiency));
  }
  return Power{p_load.si() / efficiency};
}

Power converter_dissipation(Power p_load, double efficiency) {
  return converter_input_power(p_load, efficiency) - p_load;
}

DcDcConverterModel::DcDcConverterModel()
    : Model("dcdc_converter", Category::kConverter,
            "DC-DC converter (EQ 18-19): specified by delivered load power "
            "and conversion efficiency eta, assumed constant to first "
            "order; P_diss = P_load * (1 - eta)/eta.  Bind p_load to "
            "rowpower(...) expressions for the paper's intermodel "
            "interaction (the converter is then evaluated in the Play "
            "engine's second phase, after its loads).",
            {{"p_load", "power delivered to the loads", 1.0, "W", 0, 1e6},
             {"efficiency", "conversion efficiency eta", 0.8, "", 0.01, 1.0},
             {model::kParamVdd, "converter input voltage", 6.0, "V", 0, 100},
             {model::kParamFreq, "unused (loss folded into efficiency)", 0.0,
              "Hz", 0, 1e12}}) {}

Estimate DcDcConverterModel::evaluate(const ParamReader& p) const {
  const Power p_load{param(p, "p_load")};
  const double eta = param(p, "efficiency");
  const Power p_diss = converter_dissipation(p_load, eta);
  const Voltage vin{param(p, model::kParamVdd)};
  if (vin.si() <= 0.0) {
    throw expr::ExprError("dcdc_converter: input voltage must be > 0");
  }
  // EQ 1 form: dissipated power as a static draw from the input rail.
  return make_estimate(
      {}, {StaticTerm{"conversion loss", Current{p_diss.si() / vin.si()}}},
      OperatingPoint{vin, Frequency{0}});
}

}  // namespace powerplay::models
