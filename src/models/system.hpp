// system.hpp — system-level commodity components (paper §System Design).
//
// "The power information for commodity components is, for instance,
// readily available from data-sheets."  A data-sheet component is a
// measured/typical power figure gated by a duty factor; no voltage or
// frequency scaling is applied because the figure is an end-to-end
// measurement (LCD panels, radio modems, speakers, ...).
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;

/// Generic data-sheet entry: P = p_typical * duty.
/// `vdd` exists only to satisfy the EQ 1 static-current bookkeeping
/// (I = P / vdd); it defaults to the component's nominal rail.
class DataSheetComponentModel final : public Model {
 public:
  DataSheetComponentModel();
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
};

/// FPGA macro-model.  The paper flags FPGA macro-modeling as "non-trivial
/// and the subject of further research"; this implements the natural
/// first cut consistent with the EQ 1 template: utilization * (logic-cell
/// energy + interconnect-fabric energy) per cycle, plus static current.
class FpgaModel final : public Model {
 public:
  FpgaModel(units::Capacitance c_per_cell, units::Capacitance c_fabric_per_cell);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;

 private:
  units::Capacitance c_per_cell_;
  units::Capacitance c_fabric_per_cell_;
};

/// Electro-mechanical actuator (the System Design section's "servos"):
/// mechanical output power tau*omega through the motor efficiency, plus
/// idle bias, gated by a duty factor.  P = duty * (tau*omega/eta) +
/// i_idle * vdd.
class ServoMotorModel final : public Model {
 public:
  ServoMotorModel();
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
};

/// Backlit LCD: panel drive scales with area and refresh; the backlight
/// (the real consumer) is a duty-gated constant.
class BacklitDisplayModel final : public Model {
 public:
  explicit BacklitDisplayModel(units::Capacitance c_per_m2_per_hz);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;

 private:
  units::Capacitance c_per_m2_per_hz_;
};

}  // namespace powerplay::models
