// controller.hpp — controller power models (paper §Models, Controllers).
//
// At the architecture-sketch stage the implementation platform of a
// controller (random logic, ROM, PLA) is often undecided; the paper gives
// macromodels parameterized by N_I (inputs incl. state/status bits) and
// N_O (outputs incl. state bits):
//
//   random logic (EQ 9):  C_T = C0*a0*N_I*N_O + C1*a1*N_M*N_O
//   ROM          (EQ 10): C_T = C0 + C1*N_I*2^N_I + C2*P_O*N_O*2^N_I
//                              + C3*P_O*N_O + C4*N_O
//
// with default switching probabilities a0 = a1 = 0.25 (random vectors)
// and P_O = average fraction of low output bits (precharged-high ROM only
// recharges bit-lines that evaluated low).
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;
using model::ParamSpec;

/// Random-logic (two-level boolean network) controller, EQ 9.
class RandomLogicControllerModel final : public Model {
 public:
  struct Coefficients {
    units::Capacitance c0;  ///< input-plane coefficient
    units::Capacitance c1;  ///< output-plane coefficient
  };
  explicit RandomLogicControllerModel(Coefficients k);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  Coefficients k_;
};

/// ROM-based controller, EQ 10.
class RomControllerModel final : public Model {
 public:
  struct Coefficients {
    units::Capacitance c0;  ///< fixed overhead
    units::Capacitance c1;  ///< address decode: * N_I * 2^N_I
    units::Capacitance c2;  ///< bit-line precharge: * P_O * N_O * 2^N_I
    units::Capacitance c3;  ///< sense: * P_O * N_O
    units::Capacitance c4;  ///< output drivers: * N_O
  };
  explicit RomControllerModel(Coefficients k);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  Coefficients k_;
};

/// PLA controller, modeled "in a similar way" (paper): AND plane scales
/// with N_I*N_M, OR plane with N_M*N_O, output drivers with N_O.
class PlaControllerModel final : public Model {
 public:
  struct Coefficients {
    units::Capacitance c_and;   ///< * a * N_I * N_M
    units::Capacitance c_or;    ///< * a * N_M * N_O
    units::Capacitance c_out;   ///< * N_O
  };
  explicit PlaControllerModel(Coefficients k);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  Coefficients k_;
};

}  // namespace powerplay::models
