#include "models/berkeley_library.hpp"

#include "models/analog.hpp"
#include "models/computation.hpp"
#include "models/controller.hpp"
#include "models/converter.hpp"
#include "models/interconnect.hpp"
#include "models/processor.hpp"
#include "models/storage.hpp"
#include "models/system.hpp"

namespace powerplay::models {

using namespace units;
using namespace units::literals;

void add_berkeley_models(model::ModelRegistry& r) {
  // --- Computation -------------------------------------------------------
  r.add(std::make_shared<RippleAdderModel>(coeff::kAdderPerBit));
  r.add(std::make_shared<ArrayMultiplierModel>(coeff::kMultiplierUncorrelated,
                                               coeff::kMultiplierCorrelated));
  r.add(std::make_shared<LogShifterModel>(coeff::kShifterStagePerBit,
                                          coeff::kShifterFixedPerBit));
  r.add(std::make_shared<MultiplexerModel>(coeff::kMuxPerLeg));
  r.add(std::make_shared<ComparatorModel>(coeff::kComparatorPerBit));
  r.add(std::make_shared<SvenssonBlockModel>(
      "sv_buffer_chain",
      "Two-stage buffer characterized analytically from layout "
      "capacitances (no simulation required).",
      std::vector<SvenssonStage>{
          {"inverter-1", 8_fF, 14_fF, 0.5, 0.5},
          {"inverter-2", 14_fF, 34_fF, 0.5, 0.5},
      }));
  r.add(std::make_shared<SvenssonBlockModel>(
      "sv_mux_latch",
      "Mux-feedback latch bit-slice: pass stage, keeper and output "
      "buffer stages from layout extraction.",
      std::vector<SvenssonStage>{
          {"pass-mux", 6_fF, 9_fF, 0.5, 0.25},
          {"keeper", 5_fF, 5_fF, 0.25, 0.25},
          {"output-buffer", 9_fF, 18_fF, 0.25, 0.25},
      }));

  // --- Storage -----------------------------------------------------------
  r.add(std::make_shared<RegisterModel>(coeff::kRegisterPerBit));
  r.add(std::make_shared<RegisterFileModel>(RegisterFileModel::Coefficients{
      0.2_pF, 8_fF, 25_fF, 1.2_fF}));
  r.add(std::make_shared<SramModel>(
      "sram",
      "UC Berkeley low-power library SRAM (per access).",
      SramModel::Coefficients{coeff::kSramC0, coeff::kSramPerWord,
                              coeff::kSramPerBit, coeff::kSramPerCell}));
  r.add(std::make_shared<DramModel>(
      SramModel::Coefficients{12.0_pF, 180_fF, 900_fF, 0.08_fF},
      0.4_mA));

  // --- Controllers ---------------------------------------------------------
  r.add(std::make_shared<RandomLogicControllerModel>(
      RandomLogicControllerModel::Coefficients{40_fF, 12_fF}));
  r.add(std::make_shared<RomControllerModel>(RomControllerModel::Coefficients{
      1.0_pF, 2.0_fF, 1.5_fF, 30_fF, 50_fF}));
  r.add(std::make_shared<PlaControllerModel>(
      PlaControllerModel::Coefficients{3.0_fF, 3.0_fF, 50_fF}));

  // --- Interconnect / clock / pads ----------------------------------------
  r.add(std::make_shared<InterconnectModel>(coeff::kWirePerMetre));
  r.add(std::make_shared<ClockTreeModel>(coeff::kWirePerMetre));
  r.add(std::make_shared<BusModel>(coeff::kWirePerMetre, 40_fF));
  r.add(std::make_shared<IoPadModel>(2_pF, 10_pF));

  // --- Processors ----------------------------------------------------------
  // ARM6-class embedded core: data-book figure at 3.3 V (the InfoPad
  // terminal's processor subsystem scale).
  r.add(std::make_shared<AverageProcessorModel>(Power{0.5}, Voltage{3.3}));
  r.add(std::make_shared<InstructionProcessorModel>(
      InstructionEnergyTable{
          Voltage{3.3},
          {2.0_nJ, 5.0_nJ, 3.2_nJ, 3.0_nJ, 2.2_nJ, 1.8_nJ}},
      12.0_nJ, 0.3_nJ));

  // --- Analog / converters / system ----------------------------------------
  r.add(std::make_shared<BiasCurrentModel>());
  r.add(std::make_shared<TransconductanceAmpModel>());
  r.add(std::make_shared<OpAmpModel>());
  r.add(std::make_shared<DcDcConverterModel>());
  r.add(std::make_shared<DataSheetComponentModel>());
  r.add(std::make_shared<FpgaModel>(18_fF, 90_fF));
  r.add(std::make_shared<ServoMotorModel>());
  r.add(std::make_shared<BacklitDisplayModel>(Capacitance{3.0e-4}));
}

model::ModelRegistry berkeley_library() {
  model::ModelRegistry r;
  add_berkeley_models(r);
  return r;
}

}  // namespace powerplay::models
