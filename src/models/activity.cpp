#include "models/activity.hpp"

#include <algorithm>
#include <cmath>

#include "expr/ast.hpp"
#include "sheet/design.hpp"

namespace powerplay::models {

namespace {

constexpr double kPi = 3.14159265358979323846;

double need_number(const std::vector<expr::Value>& args, std::size_t i,
                   const char* fn) {
  if (i >= args.size() || !std::holds_alternative<double>(args[i])) {
    throw expr::ExprError(std::string(fn) + ": expected numeric argument " +
                          std::to_string(i + 1));
  }
  return std::get<double>(args[i]);
}

}  // namespace

double dbt_lsb_activity() { return 0.5; }

double dbt_sign_activity(double rho) {
  if (rho <= -1.0 || rho >= 1.0) {
    throw expr::ExprError("dbt_sign_activity: rho must be in (-1, 1), got " +
                          std::to_string(rho));
  }
  return std::acos(rho) / kPi;
}

double dbt_breakpoint_low(double sigma) {
  if (sigma <= 0.0) {
    throw expr::ExprError("dbt_breakpoint_low: sigma must be positive");
  }
  return std::log2(sigma);
}

double dbt_breakpoint_high(double sigma, double rho) {
  if (rho <= -1.0 || rho >= 1.0) {
    throw expr::ExprError("dbt_breakpoint_high: rho must be in (-1, 1)");
  }
  // Landman: BP1 = log2(sigma) + log2(sqrt(2*(1-rho)) + 2); the offset
  // widens as samples decorrelate (big steps reach high bits).
  return dbt_breakpoint_low(sigma) +
         std::log2(std::sqrt(2.0 * (1.0 - rho)) + 2.0);
}

double dbt_word_activity(double bitwidth, double sigma, double rho) {
  if (bitwidth < 1.0) {
    throw expr::ExprError("dbt_word_activity: bitwidth must be >= 1");
  }
  const double bp0 = std::clamp(dbt_breakpoint_low(sigma), 0.0, bitwidth);
  const double bp1 =
      std::clamp(dbt_breakpoint_high(sigma, rho), bp0, bitwidth);
  const double a_lsb = dbt_lsb_activity();
  const double a_sign = dbt_sign_activity(rho);

  // Integrate the per-bit activity profile over the word: flat a_lsb up
  // to BP0, linear ramp to a_sign at BP1, flat a_sign above.
  const double lsb_part = bp0 * a_lsb;
  const double ramp_part = (bp1 - bp0) * 0.5 * (a_lsb + a_sign);
  const double sign_part = (bitwidth - bp1) * a_sign;
  return (lsb_part + ramp_part + sign_part) / bitwidth;
}

double dbt_alpha(double bitwidth, double sigma, double rho) {
  return dbt_word_activity(bitwidth, sigma, rho) / dbt_lsb_activity();
}

void dbt_register(sheet::Design& design) {
  design.add_function(
      "dbt_alpha", [](const std::vector<expr::Value>& args) {
        if (args.size() != 3) {
          throw expr::ExprError(
              "dbt_alpha: expects (bitwidth, sigma, rho)");
        }
        return dbt_alpha(need_number(args, 0, "dbt_alpha"),
                         need_number(args, 1, "dbt_alpha"),
                         need_number(args, 2, "dbt_alpha"));
      });
  design.add_function(
      "dbt_sign_activity", [](const std::vector<expr::Value>& args) {
        if (args.size() != 1) {
          throw expr::ExprError("dbt_sign_activity: expects (rho)");
        }
        return dbt_sign_activity(need_number(args, 0, "dbt_sign_activity"));
      });
}

}  // namespace powerplay::models
