// analog.hpp — analog power models (paper §Models, Analog ICs).
//
// "The power dissipation of most analog circuits is dominated by static
// bias currents rather than the dynamic charging of capacitance":
//   P_ANALOG = V_supply * sum_i I_bias,i                        (EQ 13)
// For the bipolar emitter-coupled transconductance amplifier, small-
// signal specs are bijective with the bias current (EQ 14-16), so the
// model may be parameterized by G_m, R_id or R_o "much like a digital
// adder is parameterized by bit-width", giving (EQ 17):
//   P = 2 * V_supply * (kT/q) * G_m.
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;

/// EQ 14: G_m = (q/kT) * I_bias.
units::Conductance amp_transconductance(units::Current i_bias);

/// EQ 15: R_id = (4kT*beta0/q) / I_bias.
units::Resistance amp_input_impedance(double beta0, units::Current i_bias);

/// EQ 16: R_o ~= V_A / I_bias.
units::Resistance amp_output_impedance(units::Voltage early_voltage,
                                       units::Current i_bias);

/// Inverse of EQ 14: the bias current needed for a target G_m.
units::Current bias_for_transconductance(units::Conductance gm);

/// Generic bias-current block (EQ 13): P = V_supply * I_bias_total.
class BiasCurrentModel final : public Model {
 public:
  BiasCurrentModel();
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
};

/// Bipolar emitter-coupled pair parameterized by transconductance
/// (EQ 17).  Set gm > 0 to specify the amplifier by G_m, or gm = 0 and
/// i_bias directly.
class TransconductanceAmpModel final : public Model {
 public:
  TransconductanceAmpModel();
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
};

/// Multi-stage op-amp: P = V_supply * n_stages * I_bias_per_stage.
class OpAmpModel final : public Model {
 public:
  OpAmpModel();
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
};

}  // namespace powerplay::models
