// converter.hpp — DC-DC converter model (paper §Models, DC-DC Converters).
//
// A converter is specified by the power it delivers, P_Load, and its
// conversion efficiency eta = P_Load / (P_Load + P_diss) (EQ 18), assumed
// constant to first order, giving (EQ 19):
//
//   P_diss = P_Load * (1 - eta) / eta
//
// "This is an example of intermodel interaction; the output from other
// models is used to calculate the dissipation in the converter."  On the
// sheet, bind p_load to an expression like
//   rowpower("Radio") + rowpower("Display")
// and the Play engine's second phase resolves it automatically.
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;

class DcDcConverterModel final : public Model {
 public:
  DcDcConverterModel();
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
};

/// Battery/source bookkeeping helper: input power a converter draws for
/// a given load (EQ 18 rearranged): P_in = P_load / eta.
units::Power converter_input_power(units::Power p_load, double efficiency);

/// EQ 19 directly.
units::Power converter_dissipation(units::Power p_load, double efficiency);

}  // namespace powerplay::models
