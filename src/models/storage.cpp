#include "models/storage.hpp"

#include <cmath>

namespace powerplay::models {

using namespace units;
using model::CapTerm;
using model::Category;
using model::OperatingPoint;
using model::StaticTerm;

namespace {

ParamSpec spec_vdd() {
  return {model::kParamVdd, "supply voltage", 1.5, "V", 0, 40};
}
ParamSpec spec_f() {
  return {model::kParamFreq, "access rate", 0.0, "Hz", 0, 1e12};
}
ParamSpec spec_alpha() {
  return {"alpha", "switching activity scale", 1.0, "", 0, 1};
}

}  // namespace

// ---------------------------------------------------------------------------
// RegisterModel
// ---------------------------------------------------------------------------

RegisterModel::RegisterModel(Capacitance c_per_bit)
    : Model("register", Category::kStorage,
            "Edge-triggered register bank: C_T = bits * C0, clock "
            "capacitance included in the per-bit coefficient as the paper "
            "prescribes.",
            {{"bits", "register width", 8, "bits", 1, 1024, true},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      c_per_bit_(c_per_bit) {}

Estimate RegisterModel::evaluate(const ParamReader& p) const {
  const double bits = param(p, "bits");
  const double alpha = param(p, "alpha");
  // Clock toggles every cycle regardless of data activity: model half the
  // per-bit capacitance as clock (alpha-independent), half as data.
  const Capacitance c_clock = c_per_bit_ * (0.5 * bits);
  const Capacitance c_data = c_per_bit_ * (0.5 * bits * alpha);
  return make_estimate(
      {CapTerm{"clock", c_clock}, CapTerm{"data", c_data}}, {}, operating_point(p),
      Area{bits * 1.5e-9}, Time{1.2e-9});
}

// ---------------------------------------------------------------------------
// RegisterFileModel
// ---------------------------------------------------------------------------

RegisterFileModel::RegisterFileModel(Coefficients k)
    : Model("register_file", Category::kStorage,
            "Small multi-port storage: organization model "
            "C_T = C0 + Cw*words + Cb*bits + Ccell*words*bits (EQ 7 at "
            "register-file scale, rail-to-rail).",
            {{"words", "number of entries", 16, "", 1, 1024, true},
             {"bits", "entry width", 16, "bits", 1, 256, true},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      k_(k) {}

Estimate RegisterFileModel::evaluate(const ParamReader& p) const {
  const double words = param(p, "words");
  const double bits = param(p, "bits");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = (k_.c0 + k_.c_word * words + k_.c_bit * bits +
                           k_.c_cell * (words * bits)) *
                          alpha;
  return make_estimate({CapTerm{"register file", c_t}}, {}, operating_point(p),
                       Area{words * bits * 0.6e-9},
                       Time{(2.0 + std::log2(words) * 0.4) * 1e-9});
}

// ---------------------------------------------------------------------------
// SramModel — EQ 7 / EQ 8
// ---------------------------------------------------------------------------

SramModel::SramModel(std::string name, std::string documentation,
                     Coefficients k)
    : Model(std::move(name), Category::kStorage,
            std::move(documentation) +
                "  Organization model (EQ 7): C_T = C0 + Cw*words + "
                "Cb*bits + Ccell*words*bits.  With vswing > 0 the "
                "bitline_fraction of C_T swings only vswing (EQ 8), so "
                "power scales as Cfull*VDD^2 + Cpartial*Vswing*VDD rather "
                "than C_T*VDD^2.",
            {{"words", "number of words", 1024, "", 1, 1 << 24, true},
             {"bits", "word width", 8, "bits", 1, 512, true},
             {"vswing",
              "bit-line swing [V]; 0 selects full rail-to-rail swing", 0.0,
              "V", 0, 40},
             {"bitline_fraction",
              "fraction of C_T on the reduced-swing bit-lines", 0.6, "", 0,
              1},
             {"i_static", "standby + sense-amp bias current", 0.0, "A", 0, 1},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      k_(k) {}

Capacitance SramModel::organization_capacitance(double words,
                                                double bits) const {
  return k_.c0 + k_.c_word * words + k_.c_bit * bits +
         k_.c_cell * (words * bits);
}

Estimate SramModel::evaluate(const ParamReader& p) const {
  const double words = param(p, "words");
  const double bits = param(p, "bits");
  const double vswing = param(p, "vswing");
  const double bitline_fraction = param(p, "bitline_fraction");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = organization_capacitance(words, bits) * alpha;

  std::vector<CapTerm> terms;
  if (vswing > 0.0) {
    const Capacitance c_partial = c_t * bitline_fraction;
    const Capacitance c_full = c_t * (1.0 - bitline_fraction);
    terms.push_back(CapTerm{"periphery (full swing)", c_full});
    terms.push_back(CapTerm{"bit-lines (reduced swing)", c_partial,
                            Voltage{vswing}, /*full_swing=*/false});
  } else {
    terms.push_back(CapTerm{"array + periphery", c_t});
  }

  std::vector<StaticTerm> statics;
  const double i_static = param(p, "i_static");
  if (i_static > 0.0) {
    statics.push_back(StaticTerm{"sense-amp bias", Current{i_static}});
  }
  return make_estimate(std::move(terms), std::move(statics), operating_point(p),
                       Area{words * bits * 0.15e-9},
                       Time{(4.0 + std::log2(words) * 0.6) * 1e-9});
}

// ---------------------------------------------------------------------------
// DramModel
// ---------------------------------------------------------------------------

DramModel::DramModel(SramModel::Coefficients k, Current refresh_current)
    : Model("dram", Category::kStorage,
            "DRAM page access: organization capacitance per EQ 7 plus a "
            "refresh charge stream modeled as the static current of EQ 1.",
            {{"words", "number of words", 1 << 16, "", 1, 1 << 28, true},
             {"bits", "word width", 16, "bits", 1, 512, true},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      k_(k),
      refresh_current_(refresh_current) {}

Estimate DramModel::evaluate(const ParamReader& p) const {
  const double words = param(p, "words");
  const double bits = param(p, "bits");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = (k_.c0 + k_.c_word * std::sqrt(words) +
                           k_.c_bit * bits + k_.c_cell * (words * bits)) *
                          alpha;
  return make_estimate({CapTerm{"page access", c_t}},
                       {StaticTerm{"refresh", refresh_current_}}, operating_point(p),
                       Area{words * bits * 0.04e-9},
                       Time{(20.0 + std::log2(words)) * 1e-9});
}

}  // namespace powerplay::models
