#include "models/analog.hpp"

#include "expr/ast.hpp"

namespace powerplay::models {

using namespace units;
using model::Category;
using model::OperatingPoint;
using model::ParamSpec;
using model::StaticTerm;

namespace {

ParamSpec spec_vdd(double dflt = 3.0) {
  return {model::kParamVdd, "analog supply voltage", dflt, "V", 0, 40};
}

}  // namespace

Conductance amp_transconductance(Current i_bias) {
  // EQ 14: g_m = (q/kT) * I_bias = I_bias / V_T.
  return Conductance{i_bias.si() / kThermalVoltage300K.si()};
}

Resistance amp_input_impedance(double beta0, Current i_bias) {
  if (i_bias.si() <= 0.0) {
    throw expr::ExprError("amp_input_impedance: bias current must be > 0");
  }
  // EQ 15: R_id = 2*beta0/g_m = (4kT*beta0/q) / I_bias... note the paper
  // writes R_id = 2 r_pi = 2 beta0/g_m; with g_m = I/V_T this is
  // 2*beta0*V_T / I.  (The printed 4kT/q folds the differential pair's
  // half-bias per transistor.)
  return Resistance{2.0 * beta0 * 2.0 * kThermalVoltage300K.si() /
                    i_bias.si()};
}

Resistance amp_output_impedance(Voltage early_voltage, Current i_bias) {
  if (i_bias.si() <= 0.0) {
    throw expr::ExprError("amp_output_impedance: bias current must be > 0");
  }
  // EQ 16: R_o ~= r_o / 2 = V_A / I_bias.
  return Resistance{early_voltage.si() / i_bias.si()};
}

Current bias_for_transconductance(Conductance gm) {
  return Current{gm.si() * kThermalVoltage300K.si()};
}

// ---------------------------------------------------------------------------
// BiasCurrentModel — EQ 13
// ---------------------------------------------------------------------------

BiasCurrentModel::BiasCurrentModel()
    : Model("analog_bias", Category::kAnalog,
            "Generic analog block (EQ 13): power is the sum of bias "
            "currents times the supply voltage, *linear* in V_supply "
            "(contrast the quadratic digital scaling).",
            {{"i_bias", "total bias current", 1e-3, "A", 0, 10},
             spec_vdd(),
             {model::kParamFreq, "unused for static analog blocks", 0.0,
              "Hz", 0, 1e12}}) {}

Estimate BiasCurrentModel::evaluate(const ParamReader& p) const {
  return make_estimate({}, {StaticTerm{"bias", Current{param(p, "i_bias")}}},
                       operating_point(p));
}

// ---------------------------------------------------------------------------
// TransconductanceAmpModel — EQ 14-17
// ---------------------------------------------------------------------------

TransconductanceAmpModel::TransconductanceAmpModel()
    : Model("gm_amplifier", Category::kAnalog,
            "Bipolar emitter-coupled transconductance amplifier "
            "(EQ 14-17).  Specify either gm (siemens; the bias current "
            "follows from EQ 14: I = gm*kT/q, and P = 2*Vsupply*(kT/q)*gm "
            "per EQ 17) or i_bias directly with gm = 0.  The factor 2 is "
            "the tail current split across the differential pair.",
            {{"gm", "target transconductance (0 = use i_bias)", 0.0, "S", 0,
              100},
             {"i_bias", "explicit bias current (used when gm = 0)", 1e-3,
              "A", 0, 10},
             spec_vdd(),
             {model::kParamFreq, "unused", 0.0, "Hz", 0, 1e12}}) {}

Estimate TransconductanceAmpModel::evaluate(const ParamReader& p) const {
  const double gm = param(p, "gm");
  const Current i_bias = gm > 0.0 ? bias_for_transconductance(Conductance{gm})
                                  : Current{param(p, "i_bias")};
  // EQ 17: P = 2 * V_supply * (kT/q) * G_m = 2 * V_supply * I_bias.
  return make_estimate({}, {StaticTerm{"tail current", i_bias * 2.0}},
                       operating_point(p));
}

// ---------------------------------------------------------------------------
// OpAmpModel
// ---------------------------------------------------------------------------

OpAmpModel::OpAmpModel()
    : Model("op_amp", Category::kAnalog,
            "Multi-stage operational amplifier (EQ 13 applied per stage): "
            "P = V_supply * n_stages * I_bias_per_stage.",
            {{"n_stages", "gain stages", 2, "", 1, 8, true},
             {"i_bias_per_stage", "bias current per stage", 0.5e-3, "A", 0,
              1},
             spec_vdd(),
             {model::kParamFreq, "unused", 0.0, "Hz", 0, 1e12}}) {}

Estimate OpAmpModel::evaluate(const ParamReader& p) const {
  const Current total =
      Current{param(p, "n_stages") * param(p, "i_bias_per_stage")};
  return make_estimate({}, {StaticTerm{"stage bias", total}}, operating_point(p));
}

}  // namespace powerplay::models
