#include "models/controller.hpp"

#include <cmath>

namespace powerplay::models {

using namespace units;
using model::CapTerm;
using model::Category;
using model::OperatingPoint;

namespace {

ParamSpec spec_vdd() {
  return {model::kParamVdd, "supply voltage", 1.5, "V", 0, 40};
}
ParamSpec spec_f() {
  return {model::kParamFreq, "controller clock rate", 0.0, "Hz", 0, 1e12};
}
ParamSpec spec_ni() {
  return {"n_inputs", "inputs incl. state and status bits", 8, "", 1, 24,
          true};
}
ParamSpec spec_no() {
  return {"n_outputs", "outputs incl. state bits and status signals", 8, "",
          1, 512, true};
}

}  // namespace

// ---------------------------------------------------------------------------
// RandomLogicControllerModel — EQ 9
// ---------------------------------------------------------------------------

RandomLogicControllerModel::RandomLogicControllerModel(Coefficients k)
    : Model("random_logic_controller", Category::kController,
            "Random-logic controller (EQ 9): "
            "C_T = C0*a0*N_I*N_O + C1*a1*N_M*N_O; a0 = a1 = 0.25 for "
            "randomly distributed input vectors.  N_M (minterms) tracks "
            "controller complexity; when unknown a 2^(N_I-1) worst-half "
            "default is conventional at sketch time.",
            {spec_ni(), spec_no(),
             {"n_minterms",
              "number of minterms (defaults to 2^(n_inputs-1) when 0)", 0,
              "", 0, 1e7},
             {"alpha0", "input-plane switching probability", 0.25, "", 0, 1},
             {"alpha1", "output-plane switching probability", 0.25, "", 0, 1},
             spec_vdd(), spec_f()}),
      k_(k) {}

Estimate RandomLogicControllerModel::evaluate(const ParamReader& p) const {
  const double ni = param(p, "n_inputs");
  const double no = param(p, "n_outputs");
  double nm = param(p, "n_minterms");
  if (nm == 0.0) nm = std::pow(2.0, ni - 1.0);
  const double a0 = param(p, "alpha0");
  const double a1 = param(p, "alpha1");
  const Capacitance c_in = k_.c0 * (a0 * ni * no);
  const Capacitance c_out = k_.c1 * (a1 * nm * no);
  return make_estimate(
      {CapTerm{"input plane", c_in}, CapTerm{"output plane", c_out}}, {},
      operating_point(p), Area{(ni * no * 0.4 + nm * no * 0.12) * 1e-9},
      Time{(1.5 + 0.1 * ni) * 1e-9});
}

// ---------------------------------------------------------------------------
// RomControllerModel — EQ 10
// ---------------------------------------------------------------------------

RomControllerModel::RomControllerModel(Coefficients k)
    : Model("rom_controller", Category::kController,
            "ROM-based controller (EQ 10): N_I address bits decode one of "
            "2^N_I word lines; N_O sense amps restore the bit-lines.  "
            "Precharged-high bit-lines only re-charge where the previous "
            "output evaluated low, hence the P_O (average fraction of low "
            "output bits) factor: C_T = C0 + C1*N_I*2^N_I + "
            "C2*P_O*N_O*2^N_I + C3*P_O*N_O + C4*N_O.",
            {spec_ni(), spec_no(),
             {"p_low", "average fraction of low output bits (P_O)", 0.5, "",
              0, 1},
             spec_vdd(), spec_f()}),
      k_(k) {}

Estimate RomControllerModel::evaluate(const ParamReader& p) const {
  const double ni = param(p, "n_inputs");
  const double no = param(p, "n_outputs");
  const double p_low = param(p, "p_low");
  const double rows = std::pow(2.0, ni);
  const Capacitance c_decode = k_.c1 * (ni * rows);
  const Capacitance c_bitlines = k_.c2 * (p_low * no * rows);
  const Capacitance c_sense = k_.c3 * (p_low * no);
  const Capacitance c_drivers = k_.c4 * no;
  return make_estimate({CapTerm{"fixed", k_.c0},
                        CapTerm{"address decode", c_decode},
                        CapTerm{"bit-line precharge", c_bitlines},
                        CapTerm{"sense", c_sense},
                        CapTerm{"output drivers", c_drivers}},
                       {}, operating_point(p), Area{rows * no * 0.05e-9},
                       Time{(3.0 + 0.4 * ni) * 1e-9});
}

// ---------------------------------------------------------------------------
// PlaControllerModel
// ---------------------------------------------------------------------------

PlaControllerModel::PlaControllerModel(Coefficients k)
    : Model("pla_controller", Category::kController,
            "PLA controller, modeled analogously to EQ 9/EQ 10 (the paper: "
            "'other implementation platforms may be modeled in a similar "
            "way'): C_T = Ca*a*N_I*N_M + Co*a*N_M*N_O + Cd*N_O.",
            {spec_ni(), spec_no(),
             {"n_minterms",
              "product terms in the AND plane (defaults to 2^(n_inputs-1) "
              "when 0)",
              0, "", 0, 1e7},
             {"alpha", "plane switching probability", 0.25, "", 0, 1},
             spec_vdd(), spec_f()}),
      k_(k) {}

Estimate PlaControllerModel::evaluate(const ParamReader& p) const {
  const double ni = param(p, "n_inputs");
  const double no = param(p, "n_outputs");
  double nm = param(p, "n_minterms");
  if (nm == 0.0) nm = std::pow(2.0, ni - 1.0);
  const double a = param(p, "alpha");
  return make_estimate({CapTerm{"AND plane", k_.c_and * (a * ni * nm)},
                        CapTerm{"OR plane", k_.c_or * (a * nm * no)},
                        CapTerm{"output drivers", k_.c_out * no}},
                       {}, operating_point(p), Area{(ni + no) * nm * 0.08e-9},
                       Time{(2.0 + 0.2 * ni) * 1e-9});
}

}  // namespace powerplay::models
