#include "models/processor.hpp"

#include <cmath>

#include "expr/ast.hpp"

namespace powerplay::models {

using namespace units;
using model::CapTerm;
using model::Category;
using model::OperatingPoint;
using model::ParamSpec;
using model::StaticTerm;

namespace {

ParamSpec spec_vdd(double dflt) {
  return {model::kParamVdd, "supply voltage", dflt, "V", 0, 40};
}

double voltage_scale(Voltage vdd, Voltage vref) {
  // Dynamic energy scales ~ V^2 to first order (EQ 1 with C fixed).
  const double r = vdd.si() / vref.si();
  return r * r;
}

}  // namespace

// ---------------------------------------------------------------------------
// AverageProcessorModel — EQ 11
// ---------------------------------------------------------------------------

AverageProcessorModel::AverageProcessorModel(Power p_avg, Voltage v_reference)
    : Model("processor_average", Category::kProcessor,
            "First-order processor model (EQ 11): P = alpha * P_AVG, where "
            "P_AVG comes from the data book or measurement and alpha <= 1 "
            "is the activity (shutdown duty) factor.  A processor without "
            "power-down capability has alpha = 1.  The model neglects "
            "instruction mix, caches and branches — it brackets, not "
            "predicts.  Scales quadratically from the data-book supply.",
            {{"alpha", "activity factor (fraction of time not shut down)",
              1.0, "", 0, 1},
             spec_vdd(v_reference.si()),
             {model::kParamFreq, "unused (P_AVG already includes the clock)",
              0.0, "Hz", 0, 1e12}}),
      p_avg_(p_avg),
      v_ref_(v_reference) {}

Estimate AverageProcessorModel::evaluate(const ParamReader& p) const {
  const double alpha = param(p, "alpha");
  const Voltage vdd{param(p, model::kParamVdd)};
  const Power power = p_avg_ * (alpha * voltage_scale(vdd, v_ref_));
  // EQ 11 hands us power directly; fold through EQ 1's static term.
  if (vdd.si() <= 0.0) {
    throw expr::ExprError("processor_average: vdd must be > 0");
  }
  return make_estimate(
      {}, {StaticTerm{"alpha * P_AVG", Current{power.si() / vdd.si()}}},
      OperatingPoint{vdd, Frequency{0}});
}

// ---------------------------------------------------------------------------
// InstructionProcessorModel — EQ 12 (+ cache refinement)
// ---------------------------------------------------------------------------

InstructionProcessorModel::InstructionProcessorModel(
    InstructionEnergyTable table, Energy default_miss_energy,
    Energy default_switch_energy)
    : Model("processor_instruction", Category::kProcessor,
            "Instruction-level processor model (EQ 12, Tiwari): "
            "E_T = sum_i N_i * E_inst,i over the profiled instruction "
            "counts; P = E_T / run time with run time = total cycles / f.  "
            "These models tend to underestimate power because cache and "
            "branch misses are neglected — supply n_misses from a cache "
            "simulator (src/cachesim) to add the per-miss energy the "
            "paper's Dinero refinement provides.",
            {{"n_alu", "ALU/logic instructions executed", 0, "", 0, 1e15},
             {"n_mul", "multiply instructions executed", 0, "", 0, 1e15},
             {"n_load", "load instructions executed", 0, "", 0, 1e15},
             {"n_store", "store instructions executed", 0, "", 0, 1e15},
             {"n_branch", "branch instructions executed", 0, "", 0, 1e15},
             {"n_other", "all other instructions executed", 0, "", 0, 1e15},
             {"cpi", "average cycles per instruction", 1.0, "", 0.1, 64},
             {"n_misses", "cache misses (0 = ideal memory)", 0, "", 0, 1e15},
             {"miss_cycles", "stall cycles per miss", 10, "", 0, 1e4},
             {"e_miss",
              "energy per miss at the reference voltage (0 = table default)",
              0.0, "J", 0, 1},
             {"n_switches",
              "inter-instruction class transitions (Tiwari circuit-state "
              "overhead)",
              0, "", 0, 1e15},
             {"e_switch",
              "energy per class switch at the reference voltage (0 = "
              "table default)",
              0.0, "J", 0, 1},
             spec_vdd(3.3),
             {model::kParamFreq, "clock frequency", 25e6, "Hz", 0, 1e12}}),
      table_(table),
      default_miss_energy_(default_miss_energy),
      default_switch_energy_(default_switch_energy) {}

Estimate InstructionProcessorModel::evaluate(const ParamReader& p) const {
  const Voltage vdd{param(p, model::kParamVdd)};
  const Frequency f{param(p, model::kParamFreq)};
  const double scale = voltage_scale(vdd, table_.v_reference);

  const double counts[kNumInstClasses] = {
      param(p, "n_alu"),  param(p, "n_mul"),    param(p, "n_load"),
      param(p, "n_store"), param(p, "n_branch"), param(p, "n_other")};
  double instructions = 0;
  Energy e_total{0};
  for (std::size_t i = 0; i < kNumInstClasses; ++i) {
    instructions += counts[i];
    e_total += table_.energy[i] * (counts[i] * scale);
  }

  const double misses = param(p, "n_misses");
  const double e_miss_in = param(p, "e_miss");
  const Energy e_miss =
      e_miss_in > 0.0 ? Energy{e_miss_in} : default_miss_energy_;
  e_total += e_miss * (misses * scale);

  const double switches = param(p, "n_switches");
  const double e_switch_in = param(p, "e_switch");
  const Energy e_switch =
      e_switch_in > 0.0 ? Energy{e_switch_in} : default_switch_energy_;
  e_total += e_switch * (switches * scale);

  const double cycles =
      instructions * param(p, "cpi") + misses * param(p, "miss_cycles");

  Estimate est;
  est.energy_per_op = e_total;
  if (cycles > 0.0 && f.si() > 0.0) {
    const Time runtime = Time{cycles / f.si()};
    est.dynamic_power = Power{e_total.si() / runtime.si()};
    est.delay = runtime;
  }
  return est;
}

}  // namespace powerplay::models
