#include "models/interconnect.hpp"

#include <cmath>

#include "expr/ast.hpp"

namespace powerplay::models {

using namespace units;
using model::CapTerm;
using model::Category;
using model::OperatingPoint;
using model::ParamSpec;

namespace {

ParamSpec spec_vdd() {
  return {model::kParamVdd, "supply voltage", 1.5, "V", 0, 40};
}
ParamSpec spec_f() {
  return {model::kParamFreq, "switching rate", 0.0, "Hz", 0, 1e12};
}

}  // namespace

double donath_average_length(double n_blocks, double rent_exponent) {
  if (n_blocks < 2.0) {
    throw expr::ExprError("donath_average_length: need at least 2 blocks");
  }
  if (rent_exponent <= 0.0 || rent_exponent >= 1.0) {
    throw expr::ExprError(
        "donath_average_length: Rent exponent must be in (0, 1)");
  }
  // The closed form has removable singularities at p = 0.5 (and the
  // (1-4^(p-1))/(1-N^(p-1)) factor is fine for p<1).  Nudge p off the
  // singular point; the limit is approached smoothly.
  double p = rent_exponent;
  if (std::fabs(p - 0.5) < 1e-9) p = 0.5 + 1e-9;
  const double n = n_blocks;

  const double term1 = 7.0 * (std::pow(n, p - 0.5) - 1.0) /
                       (std::pow(4.0, p - 0.5) - 1.0);
  const double term2 =
      (1.0 - std::pow(n, p - 1.5)) / (1.0 - std::pow(4.0, p - 1.5));
  const double norm =
      (1.0 - std::pow(4.0, p - 1.0)) / (1.0 - std::pow(n, p - 1.0));
  return (2.0 / 9.0) * (term1 - term2) * norm;
}

double rent_terminals(double blocks, double t_avg, double rent_exponent) {
  if (blocks < 1.0) {
    throw expr::ExprError("rent_terminals: need at least 1 block");
  }
  return t_avg * std::pow(blocks, rent_exponent);
}

// ---------------------------------------------------------------------------
// InterconnectModel
// ---------------------------------------------------------------------------

InterconnectModel::InterconnectModel(Capacitance default_c_per_m)
    : Model(
          "interconnect", Category::kInterconnect,
          "Rent's-rule interconnect estimate (Donath/Feuer): average wire "
          "length in gate pitches from the Rent exponent and block count; "
          "gate pitch from the active area (bind active_area to "
          "totalarea() for automatic intermodel interaction); line "
          "capacitance parameterized per unit length.  C_T = alpha * "
          "fanout * N * L_avg * pitch * c_per_length.",
          {{"n_blocks", "number of placed blocks/gates", 1000, "", 2, 1e9},
           {"rent_exponent", "Rent exponent p of the netlist", 0.6, "", 0.05,
            0.95},
           {"fanout", "average wires per block", 3, "", 0.1, 64},
           {"active_area", "total active area", 1e-6, "m^2", 0, 1},
           {"c_per_length", "wire capacitance per metre (0 = library default)",
            0.0, "F/m", 0, 1},
           {"alpha", "fraction of wires switching per cycle", 0.15, "", 0, 1},
           spec_vdd(), spec_f()}),
      default_c_per_m_(default_c_per_m) {}

Estimate InterconnectModel::evaluate(const ParamReader& p) const {
  const double n = param(p, "n_blocks");
  const double rent = param(p, "rent_exponent");
  const double fanout = param(p, "fanout");
  const double area = param(p, "active_area");
  const double alpha = param(p, "alpha");
  const double c_per_m_in = param(p, "c_per_length");
  const Capacitance c_per_m =
      c_per_m_in > 0.0 ? Capacitance{c_per_m_in} : default_c_per_m_;

  const double l_avg_pitches = donath_average_length(n, rent);
  const double pitch_m = std::sqrt(area / n);
  const double total_wire_m = fanout * n * l_avg_pitches * pitch_m;
  const Capacitance c_total = c_per_m * total_wire_m;
  const Capacitance c_t = c_total * alpha;
  return make_estimate({CapTerm{"switched wiring", c_t}}, {}, operating_point(p),
                       // First-order: routing adds ~30% to active area.
                       Area{area * 0.3},
                       Time{l_avg_pitches * pitch_m * 2e-9 / 1e-3});
}

// ---------------------------------------------------------------------------
// ClockTreeModel
// ---------------------------------------------------------------------------

ClockTreeModel::ClockTreeModel(Capacitance default_c_per_m)
    : Model("clock_tree", Category::kInterconnect,
            "Clock distribution: an H-tree spanning the active area plus "
            "per-sink load; switches rail-to-rail every cycle, so alpha is "
            "pinned at 1 and only the sheet-supplied clock rate f matters.",
            {{"active_area", "clocked area", 1e-6, "m^2", 0, 1},
             {"n_sinks", "number of clocked elements", 1000, "", 1, 1e9},
             {"c_per_sink", "load per sink", 15e-15, "F", 0, 1e-9},
             {"c_per_length",
              "wire capacitance per metre (0 = library default)", 0.0, "F/m",
              0, 1},
             spec_vdd(), spec_f()}),
      default_c_per_m_(default_c_per_m) {}

Estimate ClockTreeModel::evaluate(const ParamReader& p) const {
  const double area = param(p, "active_area");
  const double sinks = param(p, "n_sinks");
  const Capacitance c_sink{param(p, "c_per_sink")};
  const double c_per_m_in = param(p, "c_per_length");
  const Capacitance c_per_m =
      c_per_m_in > 0.0 ? Capacitance{c_per_m_in} : default_c_per_m_;

  // H-tree total length ~ 1.5 * sqrt(area) * sqrt(n_sinks).
  const double wire_m = 1.5 * std::sqrt(area) * std::sqrt(sinks);
  const Capacitance c_t = c_per_m * wire_m + c_sink * sinks;
  return make_estimate({CapTerm{"clock network", c_t}}, {}, operating_point(p),
                       Area{area * 0.02}, Time{0});
}

// ---------------------------------------------------------------------------
// BusModel
// ---------------------------------------------------------------------------

BusModel::BusModel(Capacitance default_c_per_m, Capacitance c_per_tap)
    : Model("bus", Category::kInterconnect,
            "Shared on-chip bus: every transfer switches the full wire "
            "capacitance of each toggling line plus the parasitic load "
            "of every attached block.  C_T = alpha * bits * "
            "(length * c_per_length + taps * c_per_tap).  The long-line, "
            "many-client topology is why shared buses lose to "
            "point-to-point links at low power budgets.",
            {{"bits", "bus width", 16, "bits", 1, 512, true},
             {"length", "bus length", 5e-3, "m", 0, 1},
             {"taps", "attached drivers/receivers", 4, "", 1, 256, true},
             {"c_per_length",
              "wire capacitance per metre (0 = library default)", 0.0,
              "F/m", 0, 1},
             {"alpha", "average line toggle probability", 0.25, "", 0, 1},
             spec_vdd(), spec_f()}),
      default_c_per_m_(default_c_per_m),
      c_per_tap_(c_per_tap) {}

Estimate BusModel::evaluate(const ParamReader& p) const {
  const double bits = param(p, "bits");
  const double length_m = param(p, "length");
  const double taps = param(p, "taps");
  const double alpha = param(p, "alpha");
  const double c_per_m_in = param(p, "c_per_length");
  const Capacitance c_per_m =
      c_per_m_in > 0.0 ? Capacitance{c_per_m_in} : default_c_per_m_;
  const Capacitance per_line = c_per_m * length_m + c_per_tap_ * taps;
  return make_estimate({CapTerm{"bus lines", per_line * (bits * alpha)}},
                       {}, operating_point(p),
                       Area{length_m * bits * 2e-6},  // ~2 um line pitch
                       Time{length_m * 6e-6});        // ~6 ns/m lumped RC
}

// ---------------------------------------------------------------------------
// IoPadModel
// ---------------------------------------------------------------------------

IoPadModel::IoPadModel(Capacitance c_pad, Capacitance c_external)
    : Model("io_pads", Category::kInterconnect,
            "Chip I/O: each switching pad drives its own capacitance plus "
            "the external (board) load.  C_T = n_pads * alpha * "
            "(C_pad + C_external).",
            {{"n_pads", "number of signal pads", 16, "", 1, 4096, true},
             {"alpha", "average pad switching activity", 0.25, "", 0, 1},
             spec_vdd(), spec_f()}),
      c_pad_(c_pad),
      c_external_(c_external) {}

Estimate IoPadModel::evaluate(const ParamReader& p) const {
  const double pads = param(p, "n_pads");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = (c_pad_ + c_external_) * (pads * alpha);
  return make_estimate({CapTerm{"pads + external load", c_t}}, {}, operating_point(p),
                       Area{pads * 1e-8}, Time{4e-9});
}

}  // namespace powerplay::models
