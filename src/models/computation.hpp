// computation.hpp — models for computational blocks (paper §Models).
//
// Two characterization styles are implemented, exactly as surveyed in the
// paper:
//  * Landman's empirical "black box" capacitance coefficients (EQ 2-3):
//    a library element's switched capacitance is a fitted function of its
//    complexity parameters (bit-width, etc.).  The UCB multiplier's
//    published coefficient C_T = bwA * bwB * 253 fF (EQ 20) is kept exact.
//  * Svensson's analytical per-stage model (EQ 4-6): each pull-up/pull-down
//    stage contributes alpha_in*C_in + alpha_out*C_out, summed over the
//    stages of a bit-slice and multiplied by bit-width.
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;
using model::ParamSpec;

/// Landman ripple-carry adder (EQ 3): C_T = bitwidth * C0.
/// Parameters: bitwidth, alpha (activity per bit, default 1 — the paper's
/// conservative uncorrelated assumption), vdd, f.
class RippleAdderModel final : public Model {
 public:
  explicit RippleAdderModel(units::Capacitance c_per_bit);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance c_per_bit_;
};

/// UCB array multiplier (EQ 20): C_T = bwA * bwB * coeff, where coeff is
/// 253 fF for uncorrelated inputs and a smaller coefficient for
/// correlated input streams (selected by the `correlated` parameter).
class ArrayMultiplierModel final : public Model {
 public:
  ArrayMultiplierModel(units::Capacitance uncorrelated_coeff,
                       units::Capacitance correlated_coeff);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance uncorrelated_coeff_;
  units::Capacitance correlated_coeff_;
};

/// Logarithmic shifter: C_T = bitwidth * log2(max_shift) * C_stage + bitwidth * C_fixed.
/// "More complex modules (e.g. multipliers or logarithmic shifters)
/// require additional capacitive coefficients."
class LogShifterModel final : public Model {
 public:
  LogShifterModel(units::Capacitance c_stage_per_bit,
                  units::Capacitance c_fixed_per_bit);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance c_stage_per_bit_;
  units::Capacitance c_fixed_per_bit_;
};

/// N-way multiplexer: C_T = bits * (inputs - 1) * C0 (one 2:1 stage per
/// eliminated input, the usual tree decomposition).
class MultiplexerModel final : public Model {
 public:
  explicit MultiplexerModel(units::Capacitance c_per_leg);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance c_per_leg_;
};

/// Magnitude comparator: C_T = bitwidth * C0.
class ComparatorModel final : public Model {
 public:
  explicit ComparatorModel(units::Capacitance c_per_bit);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance c_per_bit_;
};

/// One pull-up/pull-down stage of a bit-slice for the Svensson model.
struct SvenssonStage {
  std::string label;           ///< e.g. "nand2", "inverter"
  units::Capacitance c_in;     ///< physical input capacitance
  units::Capacitance c_out;    ///< physical output capacitance
  double alpha_in = 0.5;       ///< input transition probability
  double alpha_out = 0.5;      ///< output transition probability
};

/// Svensson analytical block model (EQ 4-6):
///   C_S  = alpha_in*C_in + alpha_out*C_out           (per stage)
///   C_ST = sum over stages                            (per bit-slice)
///   C_T  = bitwidth * C_ST                            (whole block)
/// The `activity_scale` parameter scales every stage's transition
/// probabilities together (1 = the characterized random-activity numbers).
class SvenssonBlockModel final : public Model {
 public:
  SvenssonBlockModel(std::string name, std::string documentation,
                     std::vector<SvenssonStage> stages);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

  [[nodiscard]] const std::vector<SvenssonStage>& stages() const {
    return stages_;
  }

  /// Per-bit-slice capacitance C_ST at a given activity scale (EQ 5).
  [[nodiscard]] units::Capacitance per_slice_capacitance(
      double activity_scale) const;

 private:
  std::vector<SvenssonStage> stages_;
};

}  // namespace powerplay::models
