// storage.hpp — memory models (paper §Models, Storage).
//
// Small memories (pipeline registers, register files) use the Landman
// computational-style coefficients.  Large memories use the organization
// model of EQ 7,
//   C_T = C0 + C1w*(words) + C1b*(bits) + C2*(words)(bits)
// and, when bit-lines swing less than rail-to-rail, the two-component
// dynamic power of EQ 8,
//   P = alpha * { C_fullswing*VDD^2 + C_partialswing*Vswing*VDD } * f
// which is why memories must be "characterized at more than one voltage
// level" — a single effective coefficient times VDD^2 mispredicts the
// voltage dependence.  Both behaviours are exposed here and contrasted in
// bench_memory_swing.
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;
using model::ParamSpec;

/// Pipeline/edge register: C_T = bits * C0, clock capacitance included
/// (the paper notes clock cap is folded into each block's model).
class RegisterModel final : public Model {
 public:
  explicit RegisterModel(units::Capacitance c_per_bit);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance c_per_bit_;
};

/// Small register file, Landman style with organization terms:
/// C_T = C0 + Cw*words + Cb*bits + Cwb*words*bits, read or write port.
class RegisterFileModel final : public Model {
 public:
  struct Coefficients {
    units::Capacitance c0;
    units::Capacitance c_word;
    units::Capacitance c_bit;
    units::Capacitance c_cell;
  };
  explicit RegisterFileModel(Coefficients k);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  Coefficients k_;
};

/// SRAM per-access model (EQ 7 + EQ 8).
///
/// Parameters:
///  * words, bits          — organization
///  * vswing               — bit-line swing in volts; 0 selects full rail
///  * bitline_fraction     — fraction of C_T attributed to bit-lines
///                           (the part that swings `vswing`)
///  * i_static             — standby/sense-amp static current [A]
///  * alpha                — activity scale
class SramModel final : public Model {
 public:
  struct Coefficients {
    units::Capacitance c0;      ///< fixed periphery (decoder, control)
    units::Capacitance c_word;  ///< per word (word-line / decode fan)
    units::Capacitance c_bit;   ///< per output bit (sense amp, output driver)
    units::Capacitance c_cell;  ///< per words*bits (array core + bit-lines)
  };
  SramModel(std::string name, std::string documentation, Coefficients k);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

  /// EQ 7 organization capacitance (rail-to-rail equivalent, before the
  /// swing split).  Exposed for tests and the memory-model bench.
  [[nodiscard]] units::Capacitance organization_capacitance(double words,
                                                            double bits) const;

 private:
  Coefficients k_;
};

/// DRAM page-access model: EQ 7-style organization capacitance plus a
/// refresh term modeled as a static current (charge per refresh / period).
class DramModel final : public Model {
 public:
  DramModel(SramModel::Coefficients k, units::Current refresh_current);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  SramModel::Coefficients k_;
  units::Current refresh_current_;
};

}  // namespace powerplay::models
