// interconnect.hpp — early interconnect estimation (paper §Models,
// Interconnect).
//
// "Donath and Feuer propose methods of estimating total interconnect
// [length] from the amount of active area using Rent's rule, which
// relates block count in a region to the number of external connections
// to the region.  Once the physical interconnect [length] is determined,
// capacitance on the line can be parameterized by feature size and
// capacitance per unit [length]."
//
// We implement Donath's hierarchical-placement average-length estimate:
// for N blocks placed on a square grid with Rent exponent p (< 1),
//
//   L_avg [gate pitches] =
//     (2/9) * ( 7*(N^(p-0.5) - 1) / (4^(p-0.5) - 1)
//             - (1 - N^(p-1.5)) / (1 - 4^(p-1.5)) )
//           * (1 - 4^(p-1)) / (1 - N^(p-1))
//
// (form as tabulated by Bakoglu from Donath 1979; the p = 0.5 / p = 1
// singularities are removable and handled by limit evaluation).  The
// gate pitch comes from the active area the spreadsheet already knows:
// pitch = sqrt(area / N).
#pragma once

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;

/// Donath average wire length in units of gate pitches.
/// Requires n_blocks >= 2 and 0 < rent_exponent < 1.
double donath_average_length(double n_blocks, double rent_exponent);

/// Rent's rule itself: terminals T = t_avg * N^p for a region of N blocks.
double rent_terminals(double blocks, double t_avg, double rent_exponent);

/// Interconnect capacitance model driven by active area.
///
/// Parameters: n_blocks, rent_exponent, fanout (wires per block),
/// active_area [m^2] (typically bound to `totalarea()` on the sheet —
/// an intermodel interaction), c_per_length [F/m], alpha.
class InterconnectModel final : public Model {
 public:
  explicit InterconnectModel(units::Capacitance default_c_per_m);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance default_c_per_m_;
};

/// Clock distribution network: total wire capacitance over the active
/// area plus one driver per sink; switches every cycle (alpha = 1) by
/// definition, at rate f (bind f to the clock frequency on the sheet).
class ClockTreeModel final : public Model {
 public:
  explicit ClockTreeModel(units::Capacitance default_c_per_m);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance default_c_per_m_;
};

/// Shared on-chip bus: wire capacitance over the bus length plus one
/// attached driver/receiver load per connected block, per line.
/// C_T = alpha * bits * (length * c_per_length + taps * c_per_tap).
class BusModel final : public Model {
 public:
  BusModel(units::Capacitance default_c_per_m, units::Capacitance c_per_tap);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance default_c_per_m_;
  units::Capacitance c_per_tap_;
};

/// Chip I/O pads: C_T = pads_switching * (c_pad + c_load_external).
class IoPadModel final : public Model {
 public:
  IoPadModel(units::Capacitance c_pad, units::Capacitance c_external);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;
  [[nodiscard]] bool operating_point_only() const override { return true; }

 private:
  units::Capacitance c_pad_;
  units::Capacitance c_external_;
};

}  // namespace powerplay::models
