// processor.hpp — programmable processor models (paper §Models,
// Programmable Processors).
//
// Three fidelity levels, exactly the paper's refinement ladder:
//  1. EQ 11: P = alpha * P_AVG — data-book average power gated by an
//     activity (shutdown duty) factor.
//  2. EQ 12: E_T = sum_i N_i * E_inst,i — instruction-level energy
//     (Tiwari); power is E_T over the run time.
//  3. Cache-aware: EQ 12 plus per-miss energy/stall from a cache
//     simulator (the paper points at Dinero; ours lives in src/cachesim
//     and its miss counts feed the `n_misses` parameter here).
#pragma once

#include <array>

#include "model/model.hpp"

namespace powerplay::models {

using model::Estimate;
using model::Model;
using model::ParamReader;

/// EQ 11: P = alpha * P_AVG, with first-order quadratic voltage scaling
/// from the data-book's reference supply.
class AverageProcessorModel final : public Model {
 public:
  AverageProcessorModel(units::Power p_avg, units::Voltage v_reference);
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;

 private:
  units::Power p_avg_;
  units::Voltage v_ref_;
};

/// Instruction classes for the EQ 12 model.  Mirrors src/isa's grouping
/// so profiler output maps 1:1 onto model parameters.
enum class InstClass { kAlu, kMul, kLoad, kStore, kBranch, kOther };
inline constexpr std::size_t kNumInstClasses = 6;

/// Per-class energy table at a reference voltage.
struct InstructionEnergyTable {
  units::Voltage v_reference;
  std::array<units::Energy, kNumInstClasses> energy;

  [[nodiscard]] units::Energy at(InstClass c) const {
    return energy[static_cast<std::size_t>(c)];
  }
};

/// EQ 12: E_T = sum N_i * E_inst,i; optional cache-miss energy term and
/// Tiwari's inter-instruction circuit-state overhead (a per-class-switch
/// energy on top of the base costs — Tiwari's key observation beyond the
/// plain base-cost sum).
///
/// Parameters: n_alu, n_mul, n_load, n_store, n_branch, n_other
/// (instruction counts from a profiler), cpi, n_misses,
/// e_miss (energy per miss at v_reference; 0 = table default),
/// n_switches (class transitions), e_switch (0 = table default), f, vdd.
/// Power = E_T(vdd) / (cycles / f).
class InstructionProcessorModel final : public Model {
 public:
  InstructionProcessorModel(InstructionEnergyTable table,
                            units::Energy default_miss_energy,
                            units::Energy default_switch_energy =
                                units::Energy{0});
  [[nodiscard]] Estimate evaluate(const ParamReader& p) const override;

  [[nodiscard]] const InstructionEnergyTable& table() const { return table_; }

 private:
  InstructionEnergyTable table_;
  units::Energy default_miss_energy_;
  units::Energy default_switch_energy_;
};

}  // namespace powerplay::models
