// activity.hpp — word-level switching-activity estimation from signal
// statistics (Landman's dual-bit-type model).
//
// The paper's models are "customized by defining the model parameters,
// such as bit-width, memory block organization, and signal-correlation
// characteristics", and the Figure 2 example notes that "signal
// correlations are neglected, yielding a conservatively high power
// estimate".  This module supplies the refinement: for a two's-complement
// data stream modeled as a Gaussian AR(1) process with standard
// deviation sigma and lag-1 correlation rho, the DBT model splits the
// word into
//
//  * an LSB "uniform white noise" region, bits below BP0, where each bit
//    toggles with probability 1/2 per sample, and
//  * an MSB "sign" region, bits above BP1, which toggle exactly when the
//    sign flips; for a Gaussian AR(1) process P(sign flip) =
//    arccos(rho) / pi (the classic arcsine/arc-cos law),
//
// with a linear interpolation across the breakpoint region in between.
// The resulting average per-bit activity feeds the `alpha` parameter of
// the capacitance models — typically through a design-local sheet
// function registered with Design::add_function (see dbt_register).
#pragma once

#include <string>

namespace powerplay::sheet {
class Design;
}

namespace powerplay::models {

/// Signal statistics of one two's-complement data stream.
struct SignalStats {
  double sigma = 256.0;  ///< standard deviation (in LSBs)
  double rho = 0.0;      ///< lag-1 temporal correlation, in (-1, 1)
};

/// Transition probability of a bit in the uniform LSB region (= 1/2).
double dbt_lsb_activity();

/// Transition probability of a sign bit: arccos(rho)/pi.
/// rho = 0 gives 1/2 (uncorrelated); rho -> 1 gives 0 (slowly varying);
/// rho -> -1 gives 1 (alternating).  Throws on |rho| >= 1.
double dbt_sign_activity(double rho);

/// Lower breakpoint BP0 = log2(sigma): bits below behave uniformly.
double dbt_breakpoint_low(double sigma);

/// Upper breakpoint BP1 = log2(sigma) + log2(sqrt(2*(1-rho)) + 2):
/// bits above behave as sign bits (Landman's empirical offset).
double dbt_breakpoint_high(double sigma, double rho);

/// Average per-bit transition probability over a `bitwidth`-bit word:
/// LSB region at 1/2, sign region at arccos(rho)/pi, linear ramp
/// between BP0 and BP1.  This is the number to feed a model's `alpha`
/// (relative to the library's uncorrelated characterization, divide by
/// 1/2: alpha = dbt_word_activity / 0.5).
double dbt_word_activity(double bitwidth, double sigma, double rho);

/// Activity *scale* relative to the uncorrelated-input characterization
/// (alpha parameter of the library models): word activity / 0.5.
double dbt_alpha(double bitwidth, double sigma, double rho);

/// Register the DBT helpers as sheet functions on a design:
///   dbt_alpha(bitwidth, sigma, rho)
///   dbt_sign_activity(rho)
/// so row formulas like  alpha = dbt_alpha(16, 256, 0.9)  work.
void dbt_register(sheet::Design& design);

}  // namespace powerplay::models
