#include "models/computation.hpp"

#include <cmath>

namespace powerplay::models {

using namespace units;
using namespace units::literals;
using model::CapTerm;
using model::Category;
using model::OperatingPoint;
using model::StaticTerm;

namespace {

/// Shared spec fragments.  Every computational model scales with supply
/// voltage and access frequency and carries a global activity knob.
ParamSpec spec_bitwidth(double dflt = 16) {
  return {"bitwidth", "data path width", dflt, "bits", 1, 256, true};
}
ParamSpec spec_alpha(double dflt = 1.0) {
  return {"alpha", "switching activity scale (1 = uncorrelated inputs)", dflt,
          "", 0, 1};
}
ParamSpec spec_vdd() {
  return {model::kParamVdd, "supply voltage", 1.5, "V", 0, 40};
}
ParamSpec spec_f() {
  return {model::kParamFreq, "operation rate", 0.0, "Hz", 0, 1e12};
}

}  // namespace

// ---------------------------------------------------------------------------
// RippleAdderModel — EQ 3
// ---------------------------------------------------------------------------

RippleAdderModel::RippleAdderModel(Capacitance c_per_bit)
    : Model("ripple_adder", Category::kComputation,
            "Landman empirical ripple-carry adder model (EQ 2-3): assuming "
            "constant activity per bit, C_T = bitwidth * C0 where C0 is the "
            "average capacitance switched per bit-slice (UCB low-power "
            "library characterization).  Scales rail-to-rail with vdd.",
            {spec_bitwidth(), spec_alpha(), spec_vdd(), spec_f()}),
      c_per_bit_(c_per_bit) {}

Estimate RippleAdderModel::evaluate(const ParamReader& p) const {
  const double bw = param(p, "bitwidth");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = c_per_bit_ * bw * alpha;
  return make_estimate({CapTerm{"adder bit-slices", c_t}}, {}, operating_point(p),
                       Area{bw * 2.8e-9},      // ~2800 um^2 / bit-slice
                       Time{bw * 0.9e-9});     // ripple carry: ~0.9 ns/bit
}

// ---------------------------------------------------------------------------
// ArrayMultiplierModel — EQ 20
// ---------------------------------------------------------------------------

ArrayMultiplierModel::ArrayMultiplierModel(Capacitance uncorrelated_coeff,
                                           Capacitance correlated_coeff)
    : Model("array_multiplier", Category::kComputation,
            "UCB low-power library array multiplier (EQ 20): "
            "C_T = bitwidthA * bitwidthB * 253 fF for non-correlated "
            "inputs; a reduced coefficient models correlated input "
            "streams (select with correlated=1).",
            {{"bitwidthA", "first operand width", 16, "bits", 1, 128, true},
             {"bitwidthB", "second operand width", 16, "bits", 1, 128, true},
             {"correlated",
              "1 = use the correlated-input coefficient, 0 = uncorrelated",
              0, "", 0, 1, true},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      uncorrelated_coeff_(uncorrelated_coeff),
      correlated_coeff_(correlated_coeff) {}

Estimate ArrayMultiplierModel::evaluate(const ParamReader& p) const {
  const double bwa = param(p, "bitwidthA");
  const double bwb = param(p, "bitwidthB");
  const bool correlated = param(p, "correlated") != 0.0;
  const double alpha = param(p, "alpha");
  const Capacitance coeff =
      correlated ? correlated_coeff_ : uncorrelated_coeff_;
  const Capacitance c_t = coeff * (bwa * bwb) * alpha;
  return make_estimate({CapTerm{"multiplier array", c_t}}, {}, operating_point(p),
                       Area{bwa * bwb * 1.1e-9},           // ~1100 um^2/cell
                       Time{(bwa + bwb) * 1.2e-9});
}

// ---------------------------------------------------------------------------
// LogShifterModel
// ---------------------------------------------------------------------------

LogShifterModel::LogShifterModel(Capacitance c_stage_per_bit,
                                 Capacitance c_fixed_per_bit)
    : Model("log_shifter", Category::kComputation,
            "Logarithmic shifter: one mux stage per power-of-two shift "
            "amount.  C_T = bitwidth*(log2(max_shift)*C_stage + C_fixed); "
            "the two capacitive coefficients follow the paper's note that "
            "complex modules need additional coefficients.",
            {spec_bitwidth(),
             {"max_shift", "largest shift distance", 8, "bits", 1, 256, true},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      c_stage_per_bit_(c_stage_per_bit),
      c_fixed_per_bit_(c_fixed_per_bit) {}

Estimate LogShifterModel::evaluate(const ParamReader& p) const {
  const double bw = param(p, "bitwidth");
  const double stages = std::ceil(std::log2(std::max(2.0, param(p, "max_shift"))));
  const double alpha = param(p, "alpha");
  const Capacitance c_t =
      (c_stage_per_bit_ * stages + c_fixed_per_bit_) * bw * alpha;
  return make_estimate({CapTerm{"shifter stages", c_t}}, {}, operating_point(p),
                       Area{bw * stages * 0.9e-9},
                       Time{stages * 0.7e-9});
}

// ---------------------------------------------------------------------------
// MultiplexerModel
// ---------------------------------------------------------------------------

MultiplexerModel::MultiplexerModel(Capacitance c_per_leg)
    : Model("multiplexer", Category::kComputation,
            "N:1 multiplexer decomposed into (inputs-1) two-way stages per "
            "bit: C_T = bits * (inputs-1) * C0.  Used for the word-select "
            "mux in the grouped-LUT decompression architecture (Figure 3).",
            {{"bits", "selected word width", 8, "bits", 1, 256, true},
             {"inputs", "number of mux inputs", 2, "", 2, 64, true},
             spec_alpha(),
             spec_vdd(),
             spec_f()}),
      c_per_leg_(c_per_leg) {}

Estimate MultiplexerModel::evaluate(const ParamReader& p) const {
  const double bits = param(p, "bits");
  const double inputs = param(p, "inputs");
  const double alpha = param(p, "alpha");
  const Capacitance c_t = c_per_leg_ * (bits * (inputs - 1)) * alpha;
  return make_estimate({CapTerm{"mux tree", c_t}}, {}, operating_point(p),
                       Area{bits * (inputs - 1) * 0.35e-9},
                       Time{std::ceil(std::log2(inputs)) * 0.5e-9});
}

// ---------------------------------------------------------------------------
// ComparatorModel
// ---------------------------------------------------------------------------

ComparatorModel::ComparatorModel(Capacitance c_per_bit)
    : Model("comparator", Category::kComputation,
            "Magnitude comparator, Landman style: C_T = bitwidth * C0.",
            {spec_bitwidth(), spec_alpha(), spec_vdd(), spec_f()}),
      c_per_bit_(c_per_bit) {}

Estimate ComparatorModel::evaluate(const ParamReader& p) const {
  const double bw = param(p, "bitwidth");
  const double alpha = param(p, "alpha");
  return make_estimate({CapTerm{"comparator slices", c_per_bit_ * bw * alpha}},
                       {}, operating_point(p), Area{bw * 1.2e-9}, Time{bw * 0.4e-9});
}

// ---------------------------------------------------------------------------
// SvenssonBlockModel — EQ 4-6
// ---------------------------------------------------------------------------

SvenssonBlockModel::SvenssonBlockModel(std::string name,
                                       std::string documentation,
                                       std::vector<SvenssonStage> stages)
    : Model(std::move(name), Category::kComputation,
            std::move(documentation) +
                "  Analytical Svensson stage model (EQ 4-6): each "
                "pull-up/pull-down stage contributes "
                "alpha_in*C_in + alpha_out*C_out; the bit-slice total is "
                "multiplied by bitwidth.",
            {spec_bitwidth(),
             {"activity_scale",
              "multiplies every stage's transition probabilities", 1.0, "",
              0, 4},
             spec_vdd(),
             spec_f()}),
      stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw expr::ExprError("Svensson block '" + this->name() +
                          "' needs at least one stage");
  }
}

Capacitance SvenssonBlockModel::per_slice_capacitance(
    double activity_scale) const {
  Capacitance c_st{0};
  for (const SvenssonStage& s : stages_) {
    c_st += s.c_in * (s.alpha_in * activity_scale) +
            s.c_out * (s.alpha_out * activity_scale);
  }
  return c_st;
}

Estimate SvenssonBlockModel::evaluate(const ParamReader& p) const {
  const double bw = param(p, "bitwidth");
  const double scale = param(p, "activity_scale");
  std::vector<CapTerm> terms;
  terms.reserve(stages_.size());
  for (const SvenssonStage& s : stages_) {
    const Capacitance per_slice =
        s.c_in * (s.alpha_in * scale) + s.c_out * (s.alpha_out * scale);
    terms.push_back(CapTerm{"stage " + s.label, per_slice * bw});
  }
  return make_estimate(std::move(terms), {}, operating_point(p),
                       Area{bw * stages_.size() * 0.5e-9},
                       Time{stages_.size() * 0.4e-9});
}

}  // namespace powerplay::models
