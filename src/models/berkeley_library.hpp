// berkeley_library.hpp — the pre-characterized shared library.
//
// "Models for each element in the University of California's low-power
// cell library are provided."  This function builds the in-process
// equivalent: one instance of every built-in model with its
// characterization coefficients.  The multiplier's 253 fF/bit^2 is the
// paper's published number (EQ 20); the remaining coefficients are
// calibrated so the VQ luminance designs reproduce the paper's reported
// results (impl-2 ~150 uW, ~1/5 of impl-1) — see EXPERIMENTS.md for the
// calibration protocol.
#pragma once

#include "model/registry.hpp"

namespace powerplay::models {

/// Characterization constants, exposed for tests and documentation.
namespace coeff {
using namespace units::literals;

// EQ 20 (published).
inline constexpr auto kMultiplierUncorrelated = 253_fF;
// "models for correlated inputs ... same format ... different
// coefficients" — value not published; assumed 60% of uncorrelated.
inline constexpr auto kMultiplierCorrelated = 152_fF;

inline constexpr auto kAdderPerBit = 33_fF;
inline constexpr auto kShifterStagePerBit = 21_fF;
inline constexpr auto kShifterFixedPerBit = 18_fF;
inline constexpr auto kMuxPerLeg = 30_fF;
inline constexpr auto kComparatorPerBit = 24_fF;
inline constexpr auto kRegisterPerBit = 15_fF;

// SRAM EQ 7 coefficients (calibrated; see EXPERIMENTS.md §Calibration).
inline constexpr auto kSramC0 = 5.0_pF;
inline constexpr auto kSramPerWord = 20_fF;
inline constexpr auto kSramPerBit = 500_fF;
inline constexpr auto kSramPerCell = 2.6_fF;

inline constexpr auto kWirePerMetre = units::Capacitance{2.0e-10};  // 0.2 pF/mm
}  // namespace coeff

/// Build the full built-in library.
model::ModelRegistry berkeley_library();

/// Add every built-in model to an existing registry (used by the web app
/// when layering user models on top of the shared library).
void add_berkeley_models(model::ModelRegistry& registry);

}  // namespace powerplay::models
