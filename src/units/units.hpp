// units.hpp — compile-time dimensional analysis for PowerPlay.
//
// Every physical quantity that flows through the estimation engine is a
// strongly typed wrapper over a double holding the value in SI base units.
// Dimensions are tracked as template exponents over (metre, kilogram,
// second, ampere), so expressions like `capacitance * voltage * voltage`
// produce an Energy at compile time and mixing incompatible quantities is
// a type error.  This removes the classic early-estimation failure mode
// (fF vs pF, microwatt vs milliwatt) from the entire code base.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace powerplay::units {

/// A physical quantity with dimension m^M · kg^KG · s^S · A^AMP,
/// stored in SI base units.
template <int M, int KG, int S, int AMP>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double raw_si) : value_(raw_si) {}

  /// Value in SI base units (volts, farads, watts, ... as appropriate).
  [[nodiscard]] constexpr double si() const { return value_; }

  constexpr Quantity operator-() const { return Quantity{-value_}; }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double k) {
    value_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    value_ /= k;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.value_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{a.value_ * k};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.value_ / k};
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

/// Dimensionless ratio; implicitly usable as a double via si().
using Scalar = Quantity<0, 0, 0, 0>;

template <int M1, int KG1, int S1, int A1, int M2, int KG2, int S2, int A2>
constexpr Quantity<M1 + M2, KG1 + KG2, S1 + S2, A1 + A2> operator*(
    Quantity<M1, KG1, S1, A1> a, Quantity<M2, KG2, S2, A2> b) {
  return Quantity<M1 + M2, KG1 + KG2, S1 + S2, A1 + A2>{a.si() * b.si()};
}

template <int M1, int KG1, int S1, int A1, int M2, int KG2, int S2, int A2>
constexpr Quantity<M1 - M2, KG1 - KG2, S1 - S2, A1 - A2> operator/(
    Quantity<M1, KG1, S1, A1> a, Quantity<M2, KG2, S2, A2> b) {
  return Quantity<M1 - M2, KG1 - KG2, S1 - S2, A1 - A2>{a.si() / b.si()};
}

template <int M, int KG, int S, int A>
constexpr Quantity<-M, -KG, -S, -A> operator/(double k,
                                              Quantity<M, KG, S, A> q) {
  return Quantity<-M, -KG, -S, -A>{k / q.si()};
}

// ---------------------------------------------------------------------------
// Named quantities (SI dimensions).
// ---------------------------------------------------------------------------

using Time = Quantity<0, 0, 1, 0>;              ///< second
using Frequency = Quantity<0, 0, -1, 0>;        ///< hertz
using Current = Quantity<0, 0, 0, 1>;           ///< ampere
using Charge = Quantity<0, 0, 1, 1>;            ///< coulomb
using Voltage = Quantity<2, 1, -3, -1>;         ///< volt
using Energy = Quantity<2, 1, -2, 0>;           ///< joule
using Power = Quantity<2, 1, -3, 0>;            ///< watt
using Capacitance = Quantity<-2, -1, 4, 2>;     ///< farad
using Resistance = Quantity<2, 1, -3, -2>;      ///< ohm
using Conductance = Quantity<-2, -1, 3, 2>;     ///< siemens (transconductance)
using Area = Quantity<2, 0, 0, 0>;              ///< square metre
using Length = Quantity<1, 0, 0, 0>;            ///< metre

// ---------------------------------------------------------------------------
// Literals.  `using namespace powerplay::units::literals;`
// ---------------------------------------------------------------------------
namespace literals {

// Voltage
constexpr Voltage operator""_V(long double v) { return Voltage{double(v)}; }
constexpr Voltage operator""_V(unsigned long long v) { return Voltage{double(v)}; }
constexpr Voltage operator""_mV(long double v) { return Voltage{double(v) * 1e-3}; }
constexpr Voltage operator""_mV(unsigned long long v) { return Voltage{double(v) * 1e-3}; }

// Capacitance
constexpr Capacitance operator""_F(long double v) { return Capacitance{double(v)}; }
constexpr Capacitance operator""_uF(long double v) { return Capacitance{double(v) * 1e-6}; }
constexpr Capacitance operator""_nF(long double v) { return Capacitance{double(v) * 1e-9}; }
constexpr Capacitance operator""_pF(long double v) { return Capacitance{double(v) * 1e-12}; }
constexpr Capacitance operator""_pF(unsigned long long v) { return Capacitance{double(v) * 1e-12}; }
constexpr Capacitance operator""_fF(long double v) { return Capacitance{double(v) * 1e-15}; }
constexpr Capacitance operator""_fF(unsigned long long v) { return Capacitance{double(v) * 1e-15}; }

// Power
constexpr Power operator""_W(long double v) { return Power{double(v)}; }
constexpr Power operator""_W(unsigned long long v) { return Power{double(v)}; }
constexpr Power operator""_mW(long double v) { return Power{double(v) * 1e-3}; }
constexpr Power operator""_mW(unsigned long long v) { return Power{double(v) * 1e-3}; }
constexpr Power operator""_uW(long double v) { return Power{double(v) * 1e-6}; }
constexpr Power operator""_uW(unsigned long long v) { return Power{double(v) * 1e-6}; }

// Energy
constexpr Energy operator""_J(long double v) { return Energy{double(v)}; }
constexpr Energy operator""_mJ(long double v) { return Energy{double(v) * 1e-3}; }
constexpr Energy operator""_uJ(long double v) { return Energy{double(v) * 1e-6}; }
constexpr Energy operator""_nJ(long double v) { return Energy{double(v) * 1e-9}; }
constexpr Energy operator""_pJ(long double v) { return Energy{double(v) * 1e-12}; }
constexpr Energy operator""_pJ(unsigned long long v) { return Energy{double(v) * 1e-12}; }

// Frequency
constexpr Frequency operator""_Hz(long double v) { return Frequency{double(v)}; }
constexpr Frequency operator""_Hz(unsigned long long v) { return Frequency{double(v)}; }
constexpr Frequency operator""_kHz(long double v) { return Frequency{double(v) * 1e3}; }
constexpr Frequency operator""_kHz(unsigned long long v) { return Frequency{double(v) * 1e3}; }
constexpr Frequency operator""_MHz(long double v) { return Frequency{double(v) * 1e6}; }
constexpr Frequency operator""_MHz(unsigned long long v) { return Frequency{double(v) * 1e6}; }
constexpr Frequency operator""_GHz(long double v) { return Frequency{double(v) * 1e9}; }

// Current
constexpr Current operator""_A(long double v) { return Current{double(v)}; }
constexpr Current operator""_A(unsigned long long v) { return Current{double(v)}; }
constexpr Current operator""_mA(long double v) { return Current{double(v) * 1e-3}; }
constexpr Current operator""_mA(unsigned long long v) { return Current{double(v) * 1e-3}; }
constexpr Current operator""_uA(long double v) { return Current{double(v) * 1e-6}; }
constexpr Current operator""_uA(unsigned long long v) { return Current{double(v) * 1e-6}; }
constexpr Current operator""_nA(long double v) { return Current{double(v) * 1e-9}; }

// Time
constexpr Time operator""_s(long double v) { return Time{double(v)}; }
constexpr Time operator""_s(unsigned long long v) { return Time{double(v)}; }
constexpr Time operator""_ms(long double v) { return Time{double(v) * 1e-3}; }
constexpr Time operator""_us(long double v) { return Time{double(v) * 1e-6}; }
constexpr Time operator""_ns(long double v) { return Time{double(v) * 1e-9}; }
constexpr Time operator""_ns(unsigned long long v) { return Time{double(v) * 1e-9}; }

// Area
constexpr Area operator""_m2(long double v) { return Area{double(v)}; }
constexpr Area operator""_mm2(long double v) { return Area{double(v) * 1e-6}; }
constexpr Area operator""_mm2(unsigned long long v) { return Area{double(v) * 1e-6}; }
constexpr Area operator""_um2(long double v) { return Area{double(v) * 1e-12}; }
constexpr Area operator""_um2(unsigned long long v) { return Area{double(v) * 1e-12}; }

// Resistance / conductance
constexpr Resistance operator""_Ohm(long double v) { return Resistance{double(v)}; }
constexpr Resistance operator""_kOhm(long double v) { return Resistance{double(v) * 1e3}; }
constexpr Conductance operator""_S(long double v) { return Conductance{double(v)}; }
constexpr Conductance operator""_mS(long double v) { return Conductance{double(v) * 1e-3}; }

}  // namespace literals

// ---------------------------------------------------------------------------
// Physical constants used by the analog models (EQ 14-17).
// ---------------------------------------------------------------------------

/// Thermal voltage kT/q at 300 K, ~25.85 mV.
constexpr Voltage kThermalVoltage300K{0.02585};

// ---------------------------------------------------------------------------
// Formatting: engineering notation with SI prefixes ("64.38 uW").
// ---------------------------------------------------------------------------

/// Format a raw SI value with an SI prefix and the given unit symbol,
/// e.g. format_si(6.438e-5, "W") == "64.38 uW".
std::string format_si(double raw_si, const std::string& unit,
                      int significant_digits = 4);

/// Areas need their own formatter: length prefixes square, so
/// 2.46e-6 m^2 formats as "2.458 mm^2", not "2.458 um^2".
std::string format_area(double si_m2, int significant_digits = 4);

std::string to_string(Voltage v);
std::string to_string(Capacitance c);
std::string to_string(Power p);
std::string to_string(Energy e);
std::string to_string(Frequency f);
std::string to_string(Current i);
std::string to_string(Time t);
std::string to_string(Area a);

}  // namespace powerplay::units
