#include "units/units.hpp"

#include <array>
#include <cstdio>

namespace powerplay::units {

namespace {

struct Prefix {
  double scale;
  const char* symbol;
};

// Ordered largest-to-smallest; chosen so mantissa lands in [1, 1000).
constexpr std::array<Prefix, 11> kPrefixes{{
    {1e12, "T"},
    {1e9, "G"},
    {1e6, "M"},
    {1e3, "k"},
    {1e0, ""},
    {1e-3, "m"},
    {1e-6, "u"},
    {1e-9, "n"},
    {1e-12, "p"},
    {1e-15, "f"},
    {1e-18, "a"},
}};

}  // namespace

std::string format_si(double raw_si, const std::string& unit,
                      int significant_digits) {
  if (raw_si == 0.0) return "0 " + unit;
  if (!std::isfinite(raw_si)) return std::to_string(raw_si) + " " + unit;

  const double magnitude = std::fabs(raw_si);
  const Prefix* chosen = &kPrefixes.back();
  for (const Prefix& p : kPrefixes) {
    if (magnitude >= p.scale) {
      chosen = &p;
      break;
    }
  }
  const double mantissa = raw_si / chosen->scale;
  // Digits after the decimal point so the total significant digits match.
  int integer_digits = 1;
  double m = std::fabs(mantissa);
  if (m < 1.0) {
    integer_digits = 0;  // a leading "0." is not a significant digit
  }
  while (m >= 10.0) {
    m /= 10.0;
    ++integer_digits;
  }
  const int frac = std::max(0, significant_digits - integer_digits);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s%s", frac, mantissa, chosen->symbol,
                unit.c_str());
  return buf;
}

std::string format_area(double si_m2, int significant_digits) {
  // Prefixes on squared units scale by the square of the length prefix:
  // 1 mm^2 = 1e-6 m^2, 1 um^2 = 1e-12 m^2, 1 nm^2 = 1e-18 m^2.
  if (si_m2 == 0.0) return "0 m^2";
  struct AreaUnit {
    double scale;
    const char* symbol;
  };
  constexpr std::array<AreaUnit, 4> kUnits{{{1.0, "m^2"},
                                            {1e-6, "mm^2"},
                                            {1e-12, "um^2"},
                                            {1e-18, "nm^2"}}};
  const double magnitude = std::fabs(si_m2);
  const AreaUnit* chosen = &kUnits.back();
  for (const AreaUnit& u : kUnits) {
    if (magnitude >= u.scale) {
      chosen = &u;
      break;
    }
  }
  const double mantissa = si_m2 / chosen->scale;
  int integer_digits = 1;
  double m = std::fabs(mantissa);
  if (m < 1.0) integer_digits = 0;
  while (m >= 10.0) {
    m /= 10.0;
    ++integer_digits;
  }
  const int frac = std::max(0, significant_digits - integer_digits);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s", frac, mantissa, chosen->symbol);
  return buf;
}

std::string to_string(Voltage v) { return format_si(v.si(), "V"); }
std::string to_string(Capacitance c) { return format_si(c.si(), "F"); }
std::string to_string(Power p) { return format_si(p.si(), "W"); }
std::string to_string(Energy e) { return format_si(e.si(), "J"); }
std::string to_string(Frequency f) { return format_si(f.si(), "Hz"); }
std::string to_string(Current i) { return format_si(i.si(), "A"); }
std::string to_string(Time t) { return format_si(t.si(), "s"); }
std::string to_string(Area a) { return format_area(a.si()); }

}  // namespace powerplay::units
