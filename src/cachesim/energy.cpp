#include "cachesim/energy.hpp"

#include "model/param.hpp"

namespace powerplay::cachesim {

using namespace units;

MemoryEnergyModel derive_memory_energy(const model::ModelRegistry& lib,
                                       const CacheConfig& config,
                                       double vdd) {
  MemoryEnergyModel out;
  {
    model::MapParamReader p;
    p.set("words", config.size_bytes / 4.0);
    p.set("bits", 32.0);
    p.set("vdd", vdd);
    p.set("f", 0.0);
    out.cache_access = lib.at("sram").evaluate(p).energy_per_op;
  }
  {
    model::MapParamReader p;
    p.set("words", 262144.0);  // 1 MB main memory
    p.set("bits", 32.0);
    p.set("vdd", vdd);
    p.set("f", 0.0);
    // One event per transferred word of the block.
    const Energy per_word = lib.at("dram").evaluate(p).energy_per_op;
    out.memory_access = per_word * (config.block_bytes / 4.0);
  }
  return out;
}

Energy memory_energy(const CacheStats& stats,
                     const MemoryEnergyModel& energy) {
  return energy.cache_access * static_cast<double>(stats.accesses()) +
         energy.memory_access *
             static_cast<double>(stats.memory_reads + stats.memory_writes);
}

Energy per_miss_energy(const MemoryEnergyModel& energy) {
  return energy.memory_access;
}

}  // namespace powerplay::cachesim
