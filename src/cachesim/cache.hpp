// cache.hpp — Dinero-style trace-driven cache simulator.
//
// The paper: "More detailed information can be obtained by using a coded
// algorithm and profilers (e.g. SPIX, Pixie) and cache simulators
// (e.g. Dinero)."  This is that cache simulator: a set-associative,
// LRU, write-back/write-through cache driven by the memory trace the
// ISA machine emits.  Its miss counts feed the `n_misses` parameter of
// the EQ 12 processor model, and its per-access/per-miss energies can be
// derived from the SRAM/DRAM models, closing the loop between substrates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace powerplay::cachesim {

struct CacheConfig {
  std::uint32_t size_bytes = 1024;
  std::uint32_t block_bytes = 16;
  std::uint32_t associativity = 2;   ///< ways; 0 = fully associative
  bool write_back = true;            ///< false = write-through
  bool write_allocate = true;

  /// Throws std::invalid_argument unless sizes are powers of two and
  /// consistent (size divisible by block*ways, at least one set).
  void validate() const;

  [[nodiscard]] std::uint32_t ways() const;
  [[nodiscard]] std::uint32_t num_sets() const;
};

struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t writebacks = 0;        ///< dirty evictions to memory
  std::uint64_t memory_reads = 0;      ///< block fills from memory
  std::uint64_t memory_writes = 0;     ///< write-throughs + writebacks

  [[nodiscard]] std::uint64_t accesses() const { return reads + writes; }
  [[nodiscard]] std::uint64_t misses() const {
    return read_misses + write_misses;
  }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses()) / accesses();
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Simulate one access at a *byte* address.  Returns true on hit.
  bool access(std::uint64_t byte_address, bool is_write);

  /// Flush all dirty lines (counts writebacks).  Valid bits cleared.
  void flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;   ///< last-use stamp; smaller = older
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Line> lines_;  ///< sets_ x ways_, row-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

/// Render stats in Dinero's spirit: one metric per line.
std::string to_string(const CacheStats& stats);

}  // namespace powerplay::cachesim
