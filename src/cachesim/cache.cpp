#include "cachesim/cache.hpp"

#include <sstream>

namespace powerplay::cachesim {

namespace {

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void CacheConfig::validate() const {
  if (!is_pow2(size_bytes)) {
    throw std::invalid_argument("cache size must be a power of two");
  }
  if (!is_pow2(block_bytes)) {
    throw std::invalid_argument("block size must be a power of two");
  }
  if (block_bytes > size_bytes) {
    throw std::invalid_argument("block larger than cache");
  }
  const std::uint32_t w = ways();
  if (w == 0 || size_bytes % (block_bytes * w) != 0) {
    throw std::invalid_argument("size not divisible by block*ways");
  }
  if (!is_pow2(num_sets())) {
    throw std::invalid_argument("set count must be a power of two");
  }
}

std::uint32_t CacheConfig::ways() const {
  if (associativity == 0) return size_bytes / block_bytes;  // fully assoc.
  return associativity;
}

std::uint32_t CacheConfig::num_sets() const {
  return size_bytes / (block_bytes * ways());
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  config_.validate();
  sets_ = config_.num_sets();
  ways_ = config_.ways();
  lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

bool Cache::access(std::uint64_t byte_address, bool is_write) {
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  const std::uint64_t block = byte_address / config_.block_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(block % sets_);
  const std::uint64_t tag = block / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  ++tick_;

  // Hit?
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      if (is_write) {
        if (config_.write_back) {
          line.dirty = true;
        } else {
          ++stats_.memory_writes;  // write-through
        }
      }
      return true;
    }
  }

  // Miss.
  if (is_write) {
    ++stats_.write_misses;
    if (!config_.write_allocate) {
      ++stats_.memory_writes;  // write around
      return false;
    }
  } else {
    ++stats_.read_misses;
  }

  // Choose victim: first invalid way, else LRU.
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    ++stats_.memory_writes;
  }
  ++stats_.memory_reads;  // block fill
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->dirty = false;
  if (is_write) {
    if (config_.write_back) {
      victim->dirty = true;
    } else {
      ++stats_.memory_writes;
    }
  }
  return false;
}

void Cache::flush() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) {
      ++stats_.writebacks;
      ++stats_.memory_writes;
    }
    line = Line{};
  }
}

std::string to_string(const CacheStats& stats) {
  std::ostringstream os;
  os << "accesses      " << stats.accesses() << '\n'
     << "reads         " << stats.reads << '\n'
     << "writes        " << stats.writes << '\n'
     << "read misses   " << stats.read_misses << '\n'
     << "write misses  " << stats.write_misses << '\n'
     << "miss rate     " << stats.miss_rate() << '\n'
     << "writebacks    " << stats.writebacks << '\n'
     << "memory reads  " << stats.memory_reads << '\n'
     << "memory writes " << stats.memory_writes << '\n';
  return os.str();
}

}  // namespace powerplay::cachesim
