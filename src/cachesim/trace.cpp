#include "cachesim/trace.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>

namespace powerplay::cachesim {

void write_din(std::ostream& out, const TraceRecord& record) {
  out << static_cast<int>(record.kind) << ' ' << std::hex
      << record.byte_address << std::dec << '\n';
}

std::vector<TraceRecord> read_din(std::istream& in) {
  std::vector<TraceRecord> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream is(line);
    int label;
    if (!(is >> label)) continue;  // blank
    std::string addr_text;
    if (!(is >> addr_text) || label < 0 || label > 2) {
      throw std::invalid_argument("din trace line " +
                                  std::to_string(line_no) + ": malformed");
    }
    TraceRecord rec;
    try {
      std::size_t pos = 0;
      rec.byte_address = std::stoull(addr_text, &pos, 16);
      if (pos != addr_text.size()) throw std::invalid_argument(addr_text);
    } catch (const std::exception&) {
      throw std::invalid_argument("din trace line " +
                                  std::to_string(line_no) +
                                  ": bad address '" + addr_text + "'");
    }
    rec.kind = static_cast<TraceRecord::Kind>(label);
    out.push_back(rec);
  }
  return out;
}

std::size_t replay(const std::vector<TraceRecord>& trace, Cache& cache) {
  for (const TraceRecord& rec : trace) {
    cache.access(rec.byte_address, rec.kind == TraceRecord::Kind::kWrite);
  }
  return trace.size();
}

}  // namespace powerplay::cachesim
