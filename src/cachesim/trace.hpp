// trace.hpp — Dinero-style trace files.
//
// Dinero III's "din" input format is one access per line:
//
//   <label> <hex address>
//
// with label 0 = data read, 1 = data write, 2 = instruction fetch.
// Reading and writing this format lets traces captured from the ISA
// machine be archived, inspected, or replayed through differently
// configured caches — the batch workflow the original tool had.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "cachesim/cache.hpp"

namespace powerplay::cachesim {

struct TraceRecord {
  std::uint64_t byte_address = 0;
  enum class Kind : std::uint8_t { kRead = 0, kWrite = 1, kFetch = 2 } kind =
      Kind::kRead;
};

/// Append one record in din format ("1 3fc0\n").
void write_din(std::ostream& out, const TraceRecord& record);

/// Parse a whole din stream.  Blank lines and '#' comments are skipped;
/// malformed lines throw std::invalid_argument with the line number.
std::vector<TraceRecord> read_din(std::istream& in);

/// Replay a trace through a cache (fetches count as reads).
/// Returns the number of records applied.
std::size_t replay(const std::vector<TraceRecord>& trace, Cache& cache);

}  // namespace powerplay::cachesim
