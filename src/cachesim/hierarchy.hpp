// hierarchy.hpp — multi-level cache hierarchy, Dinero style.
//
// Dinero simulates L1/L2 chains; so do we: an access probes L1, and
// only L1's memory-side traffic (fills, writebacks, write-throughs)
// reaches L2, whose own memory-side traffic reaches main memory.  The
// energy bridge prices each level with the library's SRAM model and the
// final memory with the DRAM model, extending the single-level flow in
// cachesim/energy.hpp.
#pragma once

#include <memory>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/energy.hpp"

namespace powerplay::cachesim {

class CacheHierarchy {
 public:
  /// Levels ordered L1 first.  At least one level required.
  explicit CacheHierarchy(std::vector<CacheConfig> levels);

  /// Simulate one access at a byte address; returns the level that hit
  /// (0 = L1, 1 = L2, ...) or the level count for main memory.
  int access(std::uint64_t byte_address, bool is_write);

  /// Write back all dirty lines, cascading down the hierarchy.
  void flush();

  [[nodiscard]] std::size_t levels() const { return caches_.size(); }
  [[nodiscard]] const CacheStats& stats(std::size_t level) const;
  [[nodiscard]] const CacheConfig& config(std::size_t level) const;

  /// Accesses that fell through every level to main memory.
  [[nodiscard]] std::uint64_t memory_accesses() const {
    return memory_accesses_;
  }

 private:
  std::vector<Cache> caches_;
  std::uint64_t memory_accesses_ = 0;
};

/// Per-level + main-memory energy for a hierarchy's recorded stats:
/// each level priced by the library "sram" sized to that level, final
/// traffic priced by the "dram" model.
units::Energy hierarchy_energy(const CacheHierarchy& hierarchy,
                               const model::ModelRegistry& lib, double vdd);

}  // namespace powerplay::cachesim
