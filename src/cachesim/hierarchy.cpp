#include "cachesim/hierarchy.hpp"

#include <stdexcept>

namespace powerplay::cachesim {

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("hierarchy needs at least one level");
  }
  caches_.reserve(levels.size());
  for (const CacheConfig& c : levels) caches_.emplace_back(c);
}

const CacheStats& CacheHierarchy::stats(std::size_t level) const {
  if (level >= caches_.size()) {
    throw std::out_of_range("cache level out of range");
  }
  return caches_[level].stats();
}

const CacheConfig& CacheHierarchy::config(std::size_t level) const {
  if (level >= caches_.size()) {
    throw std::out_of_range("cache level out of range");
  }
  return caches_[level].config();
}

int CacheHierarchy::access(std::uint64_t byte_address, bool is_write) {
  struct Event {
    std::uint64_t addr;
    bool write;
    bool demand;  ///< the original CPU access (determines the hit level)
  };
  std::vector<Event> pending = {{byte_address, is_write, true}};
  int hit_level = static_cast<int>(caches_.size());

  for (std::size_t i = 0; i < caches_.size(); ++i) {
    std::vector<Event> next;
    for (const Event& ev : pending) {
      const CacheStats before = caches_[i].stats();
      const bool hit = caches_[i].access(ev.addr, ev.write);
      if (ev.demand && hit &&
          hit_level == static_cast<int>(caches_.size())) {
        hit_level = static_cast<int>(i);
      }
      const CacheStats& after = caches_[i].stats();
      // Each new memory-side event of this level becomes an access to
      // the next.  Block fills keep the faulting address; writebacks
      // approximate the victim with the same address (its set history
      // is unknowable from here — Dinero's -skipcount-style shortcut).
      for (std::uint64_t n = before.memory_reads; n < after.memory_reads;
           ++n) {
        next.push_back({ev.addr, false, ev.demand && !hit});
      }
      for (std::uint64_t n = before.memory_writes; n < after.memory_writes;
           ++n) {
        next.push_back({ev.addr, true, false});
      }
    }
    pending = std::move(next);
    if (pending.empty()) break;
  }
  memory_accesses_ += pending.size();
  return hit_level;
}

void CacheHierarchy::flush() {
  // Victim addresses are not visible at flush time, so cascaded flush
  // traffic is accounted, not re-simulated: every level flushes its own
  // dirty lines and the final level's writebacks count as memory
  // accesses.
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    const CacheStats before = caches_[i].stats();
    caches_[i].flush();
    if (i + 1 == caches_.size()) {
      memory_accesses_ +=
          caches_[i].stats().memory_writes - before.memory_writes;
    }
  }
}

units::Energy hierarchy_energy(const CacheHierarchy& hierarchy,
                               const model::ModelRegistry& lib, double vdd) {
  units::Energy total{0};
  for (std::size_t i = 0; i < hierarchy.levels(); ++i) {
    const MemoryEnergyModel level_energy =
        derive_memory_energy(lib, hierarchy.config(i), vdd);
    total += level_energy.cache_access *
             static_cast<double>(hierarchy.stats(i).accesses());
  }
  // Main-memory traffic priced as block transfers of the last level.
  const MemoryEnergyModel last = derive_memory_energy(
      lib, hierarchy.config(hierarchy.levels() - 1), vdd);
  total += last.memory_access *
           static_cast<double>(hierarchy.memory_accesses());
  return total;
}

}  // namespace powerplay::cachesim
