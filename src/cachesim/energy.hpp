// energy.hpp — deriving memory-system energy from the model library.
//
// The refinement the paper sketches: the cache simulator supplies event
// counts, and the *same* characterized SRAM/DRAM models that power the
// spreadsheet supply the energy per event.  E_mem = accesses * E_cache +
// (fills + memory writes) * E_dram.
#pragma once

#include "cachesim/cache.hpp"
#include "model/registry.hpp"
#include "units/units.hpp"

namespace powerplay::cachesim {

struct MemoryEnergyModel {
  units::Energy cache_access;   ///< per L1 access (hit or miss probe)
  units::Energy memory_access;  ///< per main-memory block transfer
};

/// Derive per-event energies from the library's "sram" (sized to the
/// cache organization: size_bytes/4 words of 32 bits) and "dram" models
/// at the given supply voltage.
MemoryEnergyModel derive_memory_energy(const model::ModelRegistry& lib,
                                       const CacheConfig& config,
                                       double vdd);

/// Total memory-system energy for a trace's stats.
units::Energy memory_energy(const CacheStats& stats,
                            const MemoryEnergyModel& energy);

/// Energy per miss as consumed by the EQ 12 model's e_miss parameter.
units::Energy per_miss_energy(const MemoryEnergyModel& energy);

}  // namespace powerplay::cachesim
