// bench_sorting_energy — the Ong & Yan experiment the paper cites for
// EQ 12: "there can be orders of magnitude variance in power consumption
// for different sorting algorithms" on a fictitious processor.
//
// Four sorts x three input patterns x a size sweep, each profiled on the
// ISA machine and priced through the instruction-level energy model.
// The table to compare with the paper's claim is the max/min energy
// spread at each n.
#include <algorithm>
#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/energy.hpp"
#include "isa/programs.hpp"
#include "models/berkeley_library.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const model::Model& cpu = lib.at("processor_instruction");

  struct PatternSpec {
    const char* name;
    std::vector<std::int32_t> (*make)(int);
  };
  const PatternSpec patterns[] = {
      {"random", [](int n) { return isa::random_data(n, 99); }},
      {"sorted", isa::ascending_data},
      {"reversed", isa::descending_data},
  };

  auto energy_of = [&](const isa::SortProgram& prog,
                       const std::vector<std::int32_t>& data) {
    isa::Machine m(isa::assemble(prog.source), prog.memory_words + 4);
    isa::load_array(m, data);
    m.run(2'000'000'000ULL);
    auto params = isa::instruction_model_params(m.profile(),
                                                isa::ModelParams{});
    return cpu.evaluate(params).energy_per_op.si();
  };

  for (int n : {64, 256, 1024}) {
    const auto suite = isa::sorting_suite(n);
    std::printf("n = %d — energy per complete sort (EQ 12, 3.3 V "
                "reference table)\n",
                n);
    std::printf("%-11s %-12s %-12s %-12s\n", "algorithm", "random",
                "sorted", "reversed");
    double min_e = 1e300, max_e = 0;
    for (const auto& prog : suite) {
      std::printf("%-11s", prog.name.c_str());
      for (const auto& pattern : patterns) {
        const double e = energy_of(prog, pattern.make(n));
        min_e = std::min(min_e, e);
        max_e = std::max(max_e, e);
        std::printf(" %-12s", units::format_si(e, "J").c_str());
      }
      std::printf("\n");
    }
    std::printf("spread (max/min): %.0fx%s\n\n", max_e / min_e,
                max_e / min_e >= 100 ? "  — orders of magnitude, as Ong & "
                                       "Yan observed"
                                     : "");
  }

  // Same data, power view: fixed real-time budget (sort must finish in
  // one 33 ms frame), so P = E / t_frame.
  std::printf("Average power if each sort must finish one 30 Hz frame "
              "(n = 1024, random):\n");
  const int n = 1024;
  const auto suite = isa::sorting_suite(n);
  for (const auto& prog : suite) {
    const double e = energy_of(prog, isa::random_data(n, 7));
    std::printf("  %-11s %s\n", prog.name.c_str(),
                units::format_si(e / (1.0 / 30.0), "W").c_str());
  }
  return 0;
}
