// bench_fig2_luminance — regenerates Figure 2: "PowerPlay's spreadsheet
// power analysis" of the luminance decompression chip, implementation 1.
//
// The paper's figure shows, per module: the organization parameters, the
// access-rate ratio to the pixel clock, switched capacitance, energy per
// access, and power, plus the design totals at the supply voltage and
// operating frequency shown at the bottom of the sheet.  Absolute module
// values in the printed scan are partly illegible; the anchors we check
// against are the stated system parameters (2 MHz pixel rate, f/16 and
// f/32 buffer rates) and the impl-1 total implied by "impl-2 ~150 uW,
// 1/5 of the original" (i.e. ~750 uW).  See EXPERIMENTS.md.
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "studies/vq.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const sheet::Design design = studies::make_luminance_impl1(lib);
  const sheet::PlayResult result = design.play();

  std::printf("Figure 2 — Luminance_1 spreadsheet summary\n");
  std::printf("(vdd = %.2f V, pixel rate = %.0f Hz)\n\n",
              studies::kSupplyVolts, studies::kPixelRateHz);

  sheet::ReportOptions opt;
  opt.show_area = true;
  std::printf("%s\n", sheet::to_table(result, opt).c_str());

  std::printf("Per-module EQ 1 breakdown:\n");
  for (const auto& row : result.rows) {
    std::printf("%s", sheet::to_breakdown(row).c_str());
  }

  std::printf("\n%s", sheet::timing_table(sheet::timing_summary(result))
                          .c_str());

  std::printf("\nCSV form:\n%s", sheet::to_csv(result).c_str());

  const double total = result.total.total_power().si();
  std::printf("\nTotal: %s   (paper-implied impl-1 total: ~750 uW; "
              "reproduced within %.0f%%)\n",
              units::format_si(total, "W").c_str(),
              100.0 * std::abs(total - 750e-6) / 750e-6);
  return 0;
}
