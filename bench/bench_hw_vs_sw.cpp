// bench_hw_vs_sw — the ablation behind the paper's whole premise: why
// InfoPad built *dedicated hardware* for VQ decompression instead of
// decoding in software on the embedded processor.
//
// Same task, two substrates:
//  * hardware: the Figure 3 spreadsheet (dedicated SRAM banks + mux),
//  * software: the decode loop on the fictitious processor (EQ 12 with
//    cache refinement), run at whatever clock sustains the 2 Mpixel/s
//    real-time rate.
//
// The spreadsheet answers the architecture-selection question in
// seconds: the dedicated datapath is orders of magnitude cheaper.
#include <cstdio>

#include "cachesim/cache.hpp"
#include "cachesim/energy.hpp"
#include "isa/assembler.hpp"
#include "isa/energy.hpp"
#include "isa/programs.hpp"
#include "models/berkeley_library.hpp"
#include "studies/vq.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  // --- hardware: the Figure 3 sheet -------------------------------------
  const double hw_watts =
      studies::make_luminance_impl2(lib).play().total.total_power().si();

  // --- software: decode one frame (32768 pixels) on the ISA -------------
  const int kPixels = 32768;
  const int kCodes = kPixels / 16;
  cachesim::CacheConfig cache_config;
  cache_config.size_bytes = 1024;
  cache_config.block_bytes = 16;
  cache_config.associativity = 2;
  cachesim::Cache cache(cache_config);

  isa::Machine m(isa::assemble(isa::vq_decode_source(kPixels)),
                 kCodes + 4096 + kPixels + 16);
  // Codebook indices and 6-bit luminance values.
  const auto codes = isa::random_data(kCodes, 1);
  std::vector<std::int32_t> code_bytes;
  for (auto c : codes) code_bytes.push_back(c % 256);
  isa::load_array(m, code_bytes, 0);
  const auto lut = isa::random_data(4096, 2);
  std::vector<std::int32_t> lut6;
  for (auto v : lut) lut6.push_back(v % 64);
  isa::load_array(m, lut6, kCodes);
  m.set_mem_observer([&](const isa::MemAccess& a) {
    cache.access(static_cast<std::uint64_t>(a.word_address) * 4,
                 a.is_write);
  });
  m.run(2'000'000'000ULL);

  const isa::Profile& prof = m.profile();
  const double instr_per_pixel = static_cast<double>(prof.total) / kPixels;
  // Real-time requirement: 2 Mpixel/s at cpi = 1 plus miss stalls.
  const double miss_cycles = 12;
  const double cycles = static_cast<double>(prof.total) +
                        miss_cycles * cache.stats().misses();
  const double required_hz = cycles / kPixels * studies::kPixelRateHz;

  isa::ModelParams mp;
  mp.f_hz = required_hz;
  mp.vdd = 3.3;
  mp.cache_misses = cache.stats().misses();
  mp.miss_cycles = miss_cycles;
  auto params = isa::instruction_model_params(prof, mp);
  params.set("e_miss",
             cachesim::per_miss_energy(
                 cachesim::derive_memory_energy(lib, cache_config, 3.3))
                 .si());
  const auto sw = lib.at("processor_instruction").evaluate(params);

  std::printf("VQ luminance decompression, 2 Mpixel/s real-time\n\n");
  std::printf("software on the embedded core:\n");
  std::printf("  %.1f instructions/pixel, %.1f%% cache miss rate\n",
              instr_per_pixel, 100.0 * cache.stats().miss_rate());
  std::printf("  clock needed for real time: %s\n",
              units::format_si(required_hz, "Hz").c_str());
  std::printf("  average power at that rate: %s\n\n",
              units::format_si(sw.dynamic_power.si(), "W").c_str());
  std::printf("dedicated hardware (Figure 3 spreadsheet): %s\n\n",
              units::format_si(hw_watts, "W").c_str());
  std::printf("hardware advantage: %.0fx\n",
              sw.dynamic_power.si() / hw_watts);
  std::printf("\n(The InfoPad papers report three orders of magnitude "
              "for exactly this trade; the shape reproduces.)\n");
  return 0;
}
