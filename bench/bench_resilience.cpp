// bench_resilience — google-benchmark timings for the resilience layer:
// what the deadline plumbing, bounded pool, chaos wrapper and retry
// loop cost on the hot path.  The north star is a service that stays up
// under hostile traffic, so the overhead of staying up has to be
// measured like any other hot path.
#include <benchmark/benchmark.h>

#include "web/client.hpp"
#include "web/fault.hpp"
#include "web/remote.hpp"
#include "web/server.hpp"

namespace {

using namespace powerplay;
using namespace std::chrono_literals;

web::Response echo_handler(const web::Request& req) {
  return web::Response::ok_text("echo:" + req.target);
}

/// Live HTTP round trip through the pooled server (connect + request +
/// response per iteration, HTTP/1.0 style).
void BM_PooledServerRoundTrip(benchmark::State& state) {
  web::ServerOptions options;
  options.worker_count = 4;
  web::HttpServer server(0, echo_handler, options);
  server.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(web::http_get(server.port(), "/bench"));
  }
  state.counters["served"] = static_cast<double>(server.requests_served());
  server.stop();
}
BENCHMARK(BM_PooledServerRoundTrip);

/// The same round trip through a zero-rate FaultTransport: the cost of
/// having the chaos seam in place but quiet.
void BM_FaultTransportPassthrough(benchmark::State& state) {
  web::HttpServer server(0, echo_handler);
  server.start();
  web::FaultSpec spec;  // all rates zero
  web::FaultTransport chaos(
      std::make_shared<web::TcpTransport>(server.port()), spec);
  web::Request req;
  req.target = "/bench";
  for (auto _ : state) {
    benchmark::DoNotOptimize(chaos.roundtrip(req));
  }
  server.stop();
}
BENCHMARK(BM_FaultTransportPassthrough);

/// In-process fetch through 30% drops with retries and virtual sleeps:
/// what a flaky wide-area peer costs per successful fetch.
void BM_RetryThroughChaos(benchmark::State& state) {
  auto inner = std::make_shared<web::FunctionTransport>(
      [](const web::Request&) { return web::Response::ok_text("m1\nm2\n"); });
  web::FaultSpec spec;
  spec.drop_rate = 0.3;
  spec.error_rate = 0.1;
  spec.seed = 7;
  auto chaos = std::make_shared<web::FaultTransport>(inner, spec);
  web::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff = 1ms;
  web::BreakerOptions breaker;
  breaker.failure_threshold = 1 << 30;
  web::RemoteLibrary remote(chaos, policy, breaker);
  remote.set_sleeper([](std::chrono::milliseconds) {});  // virtual time
  // With a ~37% fault rate, ~1e-4 of fetches exhaust all 10 attempts;
  // count those instead of letting the exception end the bench.
  int exhausted = 0;
  for (auto _ : state) {
    try {
      benchmark::DoNotOptimize(remote.list_models());
    } catch (const web::HttpError&) {
      ++exhausted;
    }
  }
  state.counters["round_trips"] = static_cast<double>(remote.round_trips());
  state.counters["retries"] = static_cast<double>(remote.retries());
  state.counters["exhausted"] = exhausted;
}
BENCHMARK(BM_RetryThroughChaos);

/// Pure arithmetic: one backoff schedule computation.
void BM_BackoffSchedule(benchmark::State& state) {
  web::RetryPolicy policy;
  int retry = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.backoff(retry));
    retry = (retry + 1) % 16;
  }
}
BENCHMARK(BM_BackoffSchedule);

}  // namespace

BENCHMARK_MAIN();
