// bench_controllers — sweeps the controller macromodels (EQ 9, EQ 10 and
// the PLA analogue) over the two parameters the paper says "can often be
// accurately estimated at an early stage": N_I and N_O.  Reports the
// random-logic / ROM / PLA comparison and where the ROM's 2^N_I decode
// cost overtakes the two-level network — the platform-selection question
// the Controllers section poses.
#include <cmath>
#include <cstdio>

#include "model/param.hpp"
#include "models/berkeley_library.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  auto power = [&](const char* model, double ni, double no, double nm) {
    model::MapParamReader p;
    p.set("n_inputs", ni);
    p.set("n_outputs", no);
    p.set("n_minterms", nm);
    p.set("vdd", 1.5);
    p.set("f", 1e6);
    return lib.at(model).evaluate(p).total_power().si();
  };

  std::printf("Controller platform comparison at vdd = 1.5 V, f = 1 MHz\n");
  std::printf("(N_M fixed at 64 minterms; power per platform)\n\n");
  std::printf("%-5s %-5s %-14s %-14s %-14s %-10s\n", "N_I", "N_O",
              "random logic", "ROM", "PLA", "cheapest");
  int crossover_ni = -1;
  for (int ni = 4; ni <= 14; ++ni) {
    const double no = 12;
    const double rl = power("random_logic_controller", ni, no, 64);
    const double rom = power("rom_controller", ni, no, 64);
    const double pla = power("pla_controller", ni, no, 64);
    const char* best = rl <= rom && rl <= pla ? "random"
                       : rom <= pla           ? "ROM"
                                              : "PLA";
    if (crossover_ni < 0 && rom > rl) crossover_ni = ni;
    std::printf("%-5d %-5.0f %-14s %-14s %-14s %-10s\n", ni, no,
                units::format_si(rl, "W").c_str(),
                units::format_si(rom, "W").c_str(),
                units::format_si(pla, "W").c_str(), best);
  }
  if (crossover_ni > 0) {
    std::printf("\nROM overtakes random logic at N_I = %d (2^N_I decode "
                "blow-up).\n",
                crossover_ni);
  }

  std::printf("\nOutput-count sweep at N_I = 8:\n");
  std::printf("%-5s %-14s %-14s %-14s\n", "N_O", "random logic", "ROM",
              "PLA");
  for (int no = 4; no <= 64; no *= 2) {
    std::printf("%-5d %-14s %-14s %-14s\n", no,
                units::format_si(
                    power("random_logic_controller", 8, no, 64), "W")
                    .c_str(),
                units::format_si(power("rom_controller", 8, no, 64), "W")
                    .c_str(),
                units::format_si(power("pla_controller", 8, no, 64), "W")
                    .c_str());
  }

  std::printf("\nComplexity (minterm) sweep at N_I = 8, N_O = 12 "
              "(ROM is insensitive: the array is already full):\n");
  std::printf("%-6s %-14s %-14s\n", "N_M", "random logic", "PLA");
  for (int nm = 16; nm <= 256; nm *= 2) {
    std::printf("%-6d %-14s %-14s\n", nm,
                units::format_si(
                    power("random_logic_controller", 8, 12, nm), "W")
                    .c_str(),
                units::format_si(power("pla_controller", 8, 12, nm), "W")
                    .c_str());
  }

  std::printf("\nROM precharge-probability (P_O) sweep at N_I = 8, "
              "N_O = 12 (EQ 10's bit-line term):\n");
  std::printf("%-6s %-14s\n", "P_O", "ROM power");
  for (double p_low : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    model::MapParamReader p;
    p.set("n_inputs", 8.0);
    p.set("n_outputs", 12.0);
    p.set("p_low", p_low);
    p.set("vdd", 1.5);
    p.set("f", 1e6);
    std::printf("%-6.2f %-14s\n", p_low,
                units::format_si(
                    lib.at("rom_controller").evaluate(p).total_power().si(),
                    "W")
                    .c_str());
  }
  return 0;
}
