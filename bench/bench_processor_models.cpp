// bench_processor_models — the paper's processor-model refinement ladder
// on a real workload:
//
//   EQ 11  P = alpha * P_AVG                    (data-book, mix-blind)
//   EQ 12  E_T = sum N_i * E_inst,i             (profiled instruction mix)
//   EQ 12 + cache                               (Dinero-style miss counts)
//
// The workload is merge sort on the fictitious processor; the cache
// refinement runs the machine's memory trace through the cache simulator
// and feeds miss counts and the SRAM/DRAM-derived per-miss energy back
// into the model.  The paper's claim to observe: the mix-blind model
// brackets, the instruction-level model "tends to underestimate" until
// the cache term is added.
#include <cstdio>

#include "cachesim/cache.hpp"
#include "cachesim/energy.hpp"
#include "isa/assembler.hpp"
#include "isa/energy.hpp"
#include "isa/programs.hpp"
#include "models/berkeley_library.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  constexpr int kN = 512;
  constexpr double kClockHz = 25e6;
  constexpr double kVdd = 3.3;

  // Run merge sort with the cache observing the data stream.
  cachesim::CacheConfig cache_config;
  cache_config.size_bytes = 1024;
  cache_config.block_bytes = 16;
  cache_config.associativity = 2;
  cachesim::Cache cache(cache_config);

  const auto suite = isa::sorting_suite(kN);
  const isa::SortProgram& prog = suite[3];  // merge
  isa::Machine machine(isa::assemble(prog.source), prog.memory_words + 4);
  isa::load_array(machine, isa::random_data(kN, 42));
  machine.set_mem_observer([&](const isa::MemAccess& a) {
    cache.access(static_cast<std::uint64_t>(a.word_address) * 4, a.is_write);
  });
  machine.run(500'000'000);

  const isa::Profile& prof = machine.profile();
  const cachesim::CacheStats& stats = cache.stats();

  std::printf("Workload: merge sort, n = %d (random data), %llu "
              "instructions\n",
              kN, static_cast<unsigned long long>(prof.total));
  std::printf("Instruction mix: alu=%llu mul=%llu load=%llu store=%llu "
              "branch=%llu other=%llu\n\n",
              (unsigned long long)prof.count(isa::InstClass::kAlu),
              (unsigned long long)prof.count(isa::InstClass::kMul),
              (unsigned long long)prof.count(isa::InstClass::kLoad),
              (unsigned long long)prof.count(isa::InstClass::kStore),
              (unsigned long long)prof.count(isa::InstClass::kBranch),
              (unsigned long long)prof.count(isa::InstClass::kOther));
  std::printf("Cache (%u B, %u-way, %u B blocks):\n%s\n",
              cache_config.size_bytes, cache_config.ways(),
              cache_config.block_bytes,
              cachesim::to_string(stats).c_str());

  // Level 1: EQ 11.
  model::MapParamReader p11;
  p11.set("alpha", 1.0);
  p11.set("vdd", kVdd);
  p11.set("f", 0.0);
  const double power_eq11 =
      lib.at("processor_average").evaluate(p11).total_power().si();

  // Level 2: EQ 12, ideal memory.
  isa::ModelParams mp;
  mp.cpi = 1.0;
  mp.f_hz = kClockHz;
  mp.vdd = kVdd;
  auto p12 = isa::instruction_model_params(prof, mp);
  const auto est12 = lib.at("processor_instruction").evaluate(p12);

  // Level 3: EQ 12 + cache misses with library-derived miss energy.
  const auto mem_energy =
      cachesim::derive_memory_energy(lib, cache_config, kVdd);
  mp.cache_misses = stats.misses();
  mp.miss_cycles = 12;
  auto p12c = isa::instruction_model_params(prof, mp);
  p12c.set("e_miss", cachesim::per_miss_energy(mem_energy).si());
  const auto est12c = lib.at("processor_instruction").evaluate(p12c);

  std::printf("%-34s %-12s %-12s %-12s\n", "model", "energy", "runtime",
              "avg power");
  std::printf("%-34s %-12s %-12s %-12s\n", "EQ 11 (alpha * P_AVG)", "-", "-",
              units::format_si(power_eq11, "W").c_str());
  std::printf("%-34s %-12s %-12s %-12s\n", "EQ 12 (instruction-level)",
              units::format_si(est12.energy_per_op.si(), "J").c_str(),
              units::format_si(est12.delay.si(), "s").c_str(),
              units::format_si(est12.dynamic_power.si(), "W").c_str());
  std::printf("%-34s %-12s %-12s %-12s\n", "EQ 12 + cache (Dinero refined)",
              units::format_si(est12c.energy_per_op.si(), "J").c_str(),
              units::format_si(est12c.delay.si(), "s").c_str(),
              units::format_si(est12c.dynamic_power.si(), "W").c_str());

  std::printf("\ncache refinement adds %.1f%% energy and %.1f%% runtime to "
              "the ideal-memory estimate\n",
              100.0 * (est12c.energy_per_op.si() / est12.energy_per_op.si() -
                       1.0),
              100.0 * (est12c.delay.si() / est12.delay.si() - 1.0));

  // Voltage-scaling view across the three models.
  std::printf("\nVoltage scaling of the EQ 12 + cache estimate:\n");
  std::printf("%-8s %-12s\n", "vdd [V]", "energy");
  for (double vdd : {1.5, 2.0, 2.5, 3.3, 5.0}) {
    p12c.set("vdd", vdd);
    const auto e = lib.at("processor_instruction").evaluate(p12c);
    std::printf("%-8.1f %-12s\n", vdd,
                units::format_si(e.energy_per_op.si(), "J").c_str());
  }
  return 0;
}
