// bench_fig3_comparison — regenerates the Figure 1 vs Figure 3
// architectural comparison, the paper's headline result:
//
//   "PowerPlay estimated the power dissipation of the second
//    implementation (Figure 3) to be ~150 uW, or 1/5 that of the
//    original design (Figure 1).  The final implementation of the chip
//    used this second architecture and had a measured average power
//    dissipation of 100 uW."
//
// Also sweeps supply voltage to show the conclusion is robust across the
// operating range (the spreadsheet's "parameters can be varied
// dynamically" claim).
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"
#include "studies/vq.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const sheet::Design d1 = studies::make_luminance_impl1(lib);
  const sheet::Design d2 = studies::make_luminance_impl2(lib);

  const auto r1 = d1.play();
  const auto r2 = d2.play();
  const double p1 = r1.total.total_power().si();
  const double p2 = r2.total.total_power().si();

  std::printf("Figure 1 architecture (per-pixel LUT):\n%s\n",
              sheet::to_table(r1).c_str());
  std::printf("Figure 3 architecture (grouped LUT + word mux):\n%s\n",
              sheet::to_table(r2).c_str());

  std::printf("impl-1 total: %s\n", units::format_si(p1, "W").c_str());
  std::printf("impl-2 total: %s   (paper: ~150 uW)\n",
              units::format_si(p2, "W").c_str());
  std::printf("ratio impl-1/impl-2: %.2f   (paper: ~5)\n", p1 / p2);
  std::printf("measured chip (impl-2 arch): %s\n",
              units::format_si(studies::kPaperMeasuredWatts, "W").c_str());
  std::printf("estimate/measured: %.2fx   (paper promises within an "
              "octave, i.e. <= 2x)\n\n",
              p2 / studies::kPaperMeasuredWatts);

  std::printf("Supply-voltage what-if (total power, both architectures):\n");
  std::printf("%-8s %-14s %-14s %-8s\n", "vdd [V]", "impl-1", "impl-2",
              "ratio");
  for (double vdd : {1.1, 1.3, 1.5, 2.0, 2.5, 3.3}) {
    const auto s1 = sheet::sweep_global(d1, "vdd", {vdd});
    const auto s2 = sheet::sweep_global(d2, "vdd", {vdd});
    const double a = s1[0].result.total.total_power().si();
    const double b = s2[0].result.total.total_power().si();
    std::printf("%-8.2f %-14s %-14s %-8.2f\n", vdd,
                units::format_si(a, "W").c_str(),
                units::format_si(b, "W").c_str(), a / b);
  }

  std::printf("\nPixel-rate what-if (impl-2 total):\n");
  std::printf("%-14s %-14s\n", "pixel rate", "impl-2 power");
  for (double f : {0.5e6, 1e6, 2e6, 4e6, 8e6}) {
    const auto s = sheet::sweep_global(d2, "pixel_rate", {f});
    std::printf("%-14s %-14s\n", units::format_si(f, "Hz").c_str(),
                units::format_si(
                    s[0].result.total.total_power().si(), "W")
                    .c_str());
  }
  return 0;
}
