// bench_characterization — the Models-section survey as an experiment:
// the same block characterized two ways.
//
//   * Landman's empirical "black box" coefficients (EQ 2-3): one fitted
//     capacitance per bit, glitching included, no internal knowledge.
//   * Svensson's analytical stage model (EQ 4-6): physical input/output
//     capacitances per pull-up/pull-down stage and per-stage transition
//     probabilities, "without requiring extensive simulations".
//
// Both are instances of the EQ 1 template, so the spreadsheet treats
// them identically; the comparison shows where the two characterization
// styles agree (voltage scaling, bitwidth scaling) and what only the
// analytical model can express (per-stage activity).
#include <cstdio>

#include "model/param.hpp"
#include "models/berkeley_library.hpp"
#include "models/computation.hpp"

int main() {
  using namespace powerplay;
  using namespace powerplay::units::literals;
  const auto lib = models::berkeley_library();

  // An analytically characterized ripple-adder bit-slice: carry gate,
  // sum XOR chain, output buffer (capacitances as if read off a layout).
  const models::SvenssonBlockModel analytical(
      "sv_adder",
      "Full-adder bit-slice characterized from layout capacitances.",
      {{"carry-gate", 9.0_fF, 11.0_fF, 0.5, 0.5},
       {"sum-xor", 7.0_fF, 9.0_fF, 0.5, 0.5},
       {"buffer", 6.0_fF, 14.0_fF, 0.5, 0.5}});

  auto empirical_energy = [&](double bw, double vdd) {
    model::MapParamReader p;
    p.set("bitwidth", bw);
    p.set("alpha", 1.0);
    p.set("vdd", vdd);
    p.set("f", 0.0);
    return lib.at("ripple_adder").evaluate(p).energy_per_op.si();
  };
  auto analytical_energy = [&](double bw, double vdd, double act = 1.0) {
    model::MapParamReader p;
    p.set("bitwidth", bw);
    p.set("activity_scale", act);
    p.set("vdd", vdd);
    p.set("f", 0.0);
    return analytical.evaluate(p).energy_per_op.si();
  };

  std::printf("Ripple adder energy/op at 1.5 V: empirical (EQ 3) vs "
              "analytical (EQ 4-6)\n\n");
  std::printf("%-10s %-14s %-14s %-8s\n", "bitwidth", "Landman",
              "Svensson", "ratio");
  for (double bw : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double e = empirical_energy(bw, 1.5);
    const double a = analytical_energy(bw, 1.5);
    std::printf("%-10.0f %-14s %-14s %-8.2f\n", bw,
                units::format_si(e, "J").c_str(),
                units::format_si(a, "J").c_str(), e / a);
  }
  std::printf("\n(Both linear in bitwidth by construction; the constant "
              "ratio is the glitching + wiring the black-box fit absorbs "
              "and the stage model misses — the paper's reason to offer "
              "both.)\n");

  std::printf("\nVoltage scaling agrees exactly (both are EQ 1 "
              "full-swing):\n");
  std::printf("%-8s %-10s %-10s\n", "vdd", "Landman", "Svensson");
  for (double vdd : {1.1, 1.5, 2.5, 3.3}) {
    std::printf("%-8.1f %-10.3f %-10.3f\n", vdd,
                empirical_energy(16, vdd) / empirical_energy(16, 1.5),
                analytical_energy(16, vdd) / analytical_energy(16, 1.5));
  }

  std::printf("\nWhat only the analytical model expresses: per-stage "
              "activity (16-bit, 1.5 V):\n");
  std::printf("%-16s %-14s\n", "activity scale", "energy/op");
  for (double act : {0.25, 0.5, 1.0, 1.5}) {
    std::printf("%-16.2f %-14s\n", act,
                units::format_si(analytical_energy(16, 1.5, act), "J")
                    .c_str());
  }

  std::printf("\nPer-stage EQ 5 breakdown (1 bit, activity 1.0):\n");
  for (const auto& stage : analytical.stages()) {
    std::printf("  %-12s C_in=%-8s C_out=%-8s a_in=%.2f a_out=%.2f\n",
                stage.label.c_str(),
                units::format_si(stage.c_in.si(), "F").c_str(),
                units::format_si(stage.c_out.si(), "F").c_str(),
                stage.alpha_in, stage.alpha_out);
  }
  std::printf("  C_ST = %s per bit-slice (EQ 5); the Landman coefficient "
              "is %s\n",
              units::format_si(analytical.per_slice_capacitance(1.0).si(),
                               "F")
                  .c_str(),
              units::format_si(models::coeff::kAdderPerBit.si(), "F")
                  .c_str());
  return 0;
}
