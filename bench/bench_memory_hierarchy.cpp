// bench_memory_hierarchy — ablation on the cache substrate: does adding
// an L2 pay off in energy for the ISA workloads?  Extends the paper's
// Dinero refinement path (EQ 12 + cache) to a two-level hierarchy, with
// every level priced by the library's own SRAM model and main memory by
// the DRAM model.
#include <cstdio>

#include "cachesim/hierarchy.hpp"
#include "isa/assembler.hpp"
#include "isa/programs.hpp"
#include "models/berkeley_library.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  cachesim::CacheConfig l1;
  l1.size_bytes = 512;
  l1.block_bytes = 16;
  l1.associativity = 2;
  cachesim::CacheConfig l2 = l1;
  l2.size_bytes = 8192;

  struct Workload {
    std::string name;
    std::string source;
    std::size_t memory_words;
  };
  std::vector<Workload> workloads;
  const int n = 1024;
  for (const auto& s : isa::sorting_suite(n)) {
    workloads.push_back({s.name + " sort", s.source, s.memory_words});
  }
  workloads.push_back({"fir 32-tap", isa::fir_filter_source(n, 32),
                       static_cast<std::size_t>(3 * n)});

  std::printf("Memory-system energy, L1-only vs L1+L2 (n = %d)\n", n);
  std::printf("L1: %u B %u-way; L2: %u B %u-way; 16 B blocks\n\n",
              l1.size_bytes, l1.ways(), l2.size_bytes, l2.ways());
  std::printf("%-12s %-10s %-10s %-12s %-12s %-8s\n", "workload",
              "L1 miss%", "mem/1k(1L)", "E (L1 only)", "E (L1+L2)", "win");

  for (const auto& w : workloads) {
    auto run_with = [&](std::vector<cachesim::CacheConfig> configs) {
      cachesim::CacheHierarchy h(std::move(configs));
      isa::Machine m(isa::assemble(w.source), w.memory_words + 8);
      isa::load_array(m, isa::random_data(n, 77));
      m.set_mem_observer([&](const isa::MemAccess& a) {
        h.access(static_cast<std::uint64_t>(a.word_address) * 4,
                 a.is_write);
      });
      m.run(2'000'000'000ULL);
      return h;
    };
    const cachesim::CacheHierarchy one = run_with({l1});
    const cachesim::CacheHierarchy two = run_with({l1, l2});
    const double e1 = cachesim::hierarchy_energy(one, lib, 3.3).si();
    const double e2 = cachesim::hierarchy_energy(two, lib, 3.3).si();
    std::printf("%-12s %-10.1f %-10.1f %-12s %-12s %7.2fx\n",
                w.name.c_str(), 100.0 * one.stats(0).miss_rate(),
                1000.0 * one.memory_accesses() /
                    std::max<std::uint64_t>(1, one.stats(0).accesses()),
                units::format_si(e1, "J").c_str(),
                units::format_si(e2, "J").c_str(), e1 / e2);
  }
  std::printf("\n(win > 1: the L2 filters enough DRAM traffic to pay for "
              "its own access energy; win < 1: streaming workloads just "
              "pay the L2 tax.)\n");
  return 0;
}
