// bench_activity — quantifies the Figure 2 footnote: "signal
// correlations are neglected, yielding a conservatively high power
// estimate".  The DBT activity model (src/models/activity) turns signal
// statistics (sigma, lag-1 rho) into the alpha parameter of the library
// models; this bench sweeps the statistics and reports how much the
// uncorrelated default overestimates.
#include <cstdio>

#include "models/activity.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/design.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  std::printf("Dual-bit-type activity model\n\n");
  std::printf("Sign-bit transition probability (arccos law):\n");
  std::printf("%-8s %-12s\n", "rho", "P(flip)");
  for (double rho : {-0.9, -0.5, 0.0, 0.5, 0.9, 0.99}) {
    std::printf("%-8.2f %-12.4f\n", rho, models::dbt_sign_activity(rho));
  }

  std::printf("\nWord activity for a 16-bit stream (relative to the "
              "library's uncorrelated alpha = 1):\n");
  std::printf("%-10s", "sigma\\rho");
  for (double rho : {0.0, 0.5, 0.9, 0.99}) std::printf(" %-9.2f", rho);
  std::printf("\n");
  for (double sigma : {4.0, 64.0, 1024.0, 32768.0}) {
    std::printf("%-10.0f", sigma);
    for (double rho : {0.0, 0.5, 0.9, 0.99}) {
      std::printf(" %-9.3f", models::dbt_alpha(16, sigma, rho));
    }
    std::printf("\n");
  }

  // Effect on a datapath estimate: the Figure 2 adder/mux style rows
  // with speech-like statistics (narrow, strongly correlated).
  std::printf("\nDatapath sheet, uncorrelated default vs DBT-refined "
              "alpha (sigma = 64, rho = 0.9):\n");
  auto build = [&](bool refined) {
    sheet::Design d(refined ? "refined" : "conservative");
    models::dbt_register(d);
    d.globals().set("vdd", 1.5);
    d.globals().set("f", 2e6);
    auto& add = d.add_row("Adder", lib.find_shared("ripple_adder"));
    add.params.set("bitwidth", 16.0);
    auto& mul = d.add_row("Multiplier", lib.find_shared("array_multiplier"));
    mul.params.set("bitwidthA", 16.0);
    mul.params.set("bitwidthB", 16.0);
    if (refined) {
      add.params.set_formula("alpha", "dbt_alpha(16, 64, 0.9)");
      mul.params.set_formula("alpha", "dbt_alpha(16, 64, 0.9)");
    }
    return d.play().total.total_power().si();
  };
  const double conservative = build(false);
  const double refined = build(true);
  std::printf("  uncorrelated default: %s\n",
              units::format_si(conservative, "W").c_str());
  std::printf("  DBT-refined:          %s  (%.0f%% lower — the "
              "conservatism the paper flags)\n",
              units::format_si(refined, "W").c_str(),
              100.0 * (1.0 - refined / conservative));
  return 0;
}
