// bench_fig6_network — regenerates Figure 6: "PowerPlay's network
// architecture": a user at one site transparently uses models hosted by
// multiple remote sites (the paper's MIT / Motorola / Berkeley picture).
//
// Three PowerPlay servers run on loopback; the "MIT user" imports a
// model from each remote library, composes a design, and Plays it.  The
// bench reports the models fetched, the round trips each import cost,
// per-fetch latency, and the resulting design table.
#include <cstdio>

#include "library/store.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "web/app.hpp"
#include "web/remote.hpp"
#include "web/server.hpp"

namespace {

using namespace powerplay;

struct Site {
  std::string name;
  std::filesystem::path dir;
  std::unique_ptr<web::PowerPlayApp> app;
  std::unique_ptr<web::HttpServer> server;

  explicit Site(std::string site_name) : name(std::move(site_name)) {
    dir = std::filesystem::temp_directory_path() /
          ("pp_fig6_" + name + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    app = std::make_unique<web::PowerPlayApp>(library::LibraryStore(dir));
    server = std::make_unique<web::HttpServer>(
        0, [this](const web::Request& r) { return app->handle(r); });
    server->start();
  }
  ~Site() {
    server->stop();
    std::filesystem::remove_all(dir);
  }

  void publish(const std::string& model_name, const std::string& doc,
               const std::string& equation) {
    model::UserModelDefinition def;
    def.name = model_name;
    def.category = model::Category::kComputation;
    def.documentation = doc;
    def.params = {{"bitwidth", "datapath width", 16, "bits", 1, 64, true}};
    def.c_fullswing = equation;
    app->store().save_model(def);
  }
};

}  // namespace

int main() {
  std::printf("Figure 6 — model access across the network\n\n");

  Site berkeley("berkeley");
  Site motorola("motorola");
  berkeley.publish("ucb_dct8", "UCB characterized 8-point DCT datapath",
                   "bitwidth * 1.8e-12");
  motorola.publish("moto_mac", "Motorola MAC unit, data-book derived",
                   "bitwidth * 0.9e-12");

  std::printf("site %-10s serving on 127.0.0.1:%u\n", berkeley.name.c_str(),
              berkeley.server->port());
  std::printf("site %-10s serving on 127.0.0.1:%u\n\n", motorola.name.c_str(),
              motorola.server->port());

  // The "MIT" user: local built-in library plus two remote imports.
  model::ModelRegistry local = models::berkeley_library();
  web::RemoteLibrary ucb(berkeley.server->port());
  web::RemoteLibrary moto(motorola.server->port());

  for (auto* remote : {&ucb, &moto}) {
    for (const std::string& name : remote->list_models()) {
      const auto t0 = remote->round_trips();
      const web::HttpFetchResult fetch = web::timed_fetch(
          remote == &ucb ? berkeley.server->port() : motorola.server->port(),
          "/api/model?name=" + web::url_encode(name));
      remote->import_model(name, local);
      std::printf("imported %-10s  %5zu bytes  %8.3f ms  (%d fetch round "
                  "trips)\n",
                  name.c_str(), fetch.bytes, fetch.latency.si() * 1e3,
                  remote->round_trips() - t0);
    }
  }

  sheet::Design d("mit_multichip",
                  "Design assembled at MIT from Berkeley and Motorola "
                  "models plus the local built-in library.");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 10e6);
  d.add_row("DCT", local.find_shared("ucb_dct8")).params.set("bitwidth", 16.0);
  d.add_row("MAC", local.find_shared("moto_mac")).params.set("bitwidth", 24.0);
  d.add_row("Coeff ROM", local.find_shared("rom_controller"))
      .params.set("n_inputs", 6.0);
  const auto r = d.play();
  std::printf("\n%s\n", sheet::to_table(r).c_str());
  std::printf("%s\n", sheet::summary_line(r).c_str());
  return 0;
}
