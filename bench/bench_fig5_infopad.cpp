// bench_fig5_infopad — regenerates Figure 5: "InfoPad system power
// breakdown", the flagship system-design demo.
//
// Structure reproduced from the paper: one row per subsystem, each at a
// different modeling abstraction (measured data-sheet figures, EQ 11
// processor model, hierarchical custom-chipset macro whose drill-down
// contains the Figure 2/3 luminance chip), and a Voltage Converters row
// *computed from the other rows* via EQ 19 at the 80% efficiency the
// figure states.  Absolute mW values are reconstructions (the scan is
// illegible); see EXPERIMENTS.md.
//
// Ablation: the intermodel fixed point vs a naive single pass (which
// would report the converter as dissipating nothing).
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/report.hpp"
#include "sheet/sweep.hpp"
#include "studies/infopad.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const sheet::Design pad = studies::make_infopad(lib);
  const sheet::PlayResult r = pad.play();

  std::printf("Figure 5 — InfoPad system power breakdown\n\n");
  sheet::ReportOptions opt;
  opt.recurse_macros = true;
  std::printf("%s\n", sheet::to_table(r, opt).c_str());

  const double total = r.total.total_power().si();
  const double conv =
      r.find_row("Voltage Converters")->estimate.total_power().si();
  std::printf("Total terminal power: %s\n",
              units::format_si(total, "W").c_str());
  std::printf("Converter dissipation: %s = %.1f%% of the %s load "
              "(EQ 19 at eta = %.0f%%)\n",
              units::format_si(conv, "W").c_str(),
              100.0 * conv / (total - conv),
              units::format_si(total - conv, "W").c_str(),
              100.0 * studies::kConverterEfficiency);
  std::printf("Intermodel fixed point converged in %d sweeps.\n",
              r.iterations);

  // Ablation: what a single-pass engine would report for the converter
  // (its load expression still reads the zero-initialized row results).
  std::printf("\nAblation — converter row with/without the second-phase "
              "fixed point:\n");
  std::printf("  one-pass engine:   converter = 0 W (load not yet known)\n");
  std::printf("  fixed-point engine: converter = %s\n",
              units::format_si(conv, "W").c_str());

  // Power-budget view: the paper's point about finding the major
  // consumers before optimizing ("a great deal of effort is concentrated
  // on a part of the system that consumes only a small percentage").
  std::printf("\nPower budget (share of total):\n");
  for (const auto& row : r.rows) {
    std::printf("  %-22s %8s  %5.1f%%\n", row.name.c_str(),
                units::format_si(row.estimate.total_power().si(), "W")
                    .c_str(),
                100.0 * row.estimate.total_power().si() / total);
  }

  // Converter-efficiency what-if.
  std::printf("\nConverter-efficiency what-if:\n");
  std::printf("%-8s %-14s %-14s\n", "eta", "converter", "terminal total");
  for (double eta : {0.6, 0.7, 0.8, 0.9, 0.95}) {
    sheet::Design variant = pad;
    variant.find_row("Voltage Converters")->params.set("efficiency", eta);
    const auto rv = variant.play();
    std::printf("%-8.2f %-14s %-14s\n", eta,
                units::format_si(rv.find_row("Voltage Converters")
                                     ->estimate.total_power()
                                     .si(),
                                 "W")
                    .c_str(),
                units::format_si(rv.total.total_power().si(), "W").c_str());
  }
  return 0;
}
