// bench_parameter_plane — enabler #3 from the paper's introduction: "a
// spread-sheet-like work sheet, which presents the design-under-
// exploration and allows the study of the impact of parameter
// variations (such as supply voltage and clock frequency)".
//
// Regenerates the supply-voltage x pixel-rate power plane of the VQ
// luminance chip (Figure 3 architecture) and runs the power-budget
// sign-off the paper says this enables: does each operating point fit a
// 200 uW decompression budget?
#include <cstdio>

#include "models/berkeley_library.hpp"
#include "sheet/budget.hpp"
#include "sheet/sweep.hpp"
#include "studies/vq.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const sheet::Design d = studies::make_luminance_impl2(lib);

  const std::vector<double> vdds = {1.1, 1.3, 1.5, 2.0, 2.5, 3.3};
  const std::vector<double> rates = {1e6, 2e6, 4e6, 8e6};

  const auto grid = sheet::sweep_grid(d, "vdd", vdds, "pixel_rate", rates);
  std::printf("Luminance_2 total power: supply voltage x pixel rate\n\n");
  std::printf("%-8s", "vdd\\rate");
  for (double r : rates) {
    std::printf(" %-12s", units::format_si(r, "Hz").c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    std::printf("%-8.2f", vdds[i]);
    for (std::size_t j = 0; j < rates.size(); ++j) {
      std::printf(" %-12s",
                  units::format_si(
                      grid.results[i][j].total.total_power().si(), "W")
                      .c_str());
    }
    std::printf("\n");
  }

  // Power budgeting: which operating points fit a 200 uW allowance for
  // the decompression subsystem?
  std::printf("\nBudget sign-off at 200 uW (the early budgeting the "
              "paper enables):\n");
  std::printf("%-8s", "vdd\\rate");
  for (double r : rates) {
    std::printf(" %-12s", units::format_si(r, "Hz").c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    std::printf("%-8.2f", vdds[i]);
    for (std::size_t j = 0; j < rates.size(); ++j) {
      const auto report = sheet::check_budget(grid.results[i][j], {},
                                              units::Power{200e-6});
      std::printf(" %-12s", report.pass() ? "fits" : "OVER");
    }
    std::printf("\n");
  }

  // Per-module budget at the paper's operating point.
  std::printf("\nPer-module sign-off at vdd = 1.5 V, 2 MHz (LUT gets the "
              "lion's share):\n");
  const auto r = d.play();
  const auto report = sheet::check_budget(
      r, {{"Look Up Table", units::Power{130e-6}},
          {"Read Bank", units::Power{30e-6}},
          {"Write Bank", units::Power{15e-6}},
          {"Word Mux", units::Power{5e-6}}},
      units::Power{200e-6});
  std::printf("%s", sheet::budget_table(report).c_str());
  return 0;
}
