// bench_memory_swing — the EQ 7 vs EQ 8 experiment: why memories must be
// "characterized at more than one voltage level".
//
// A reduced-swing SRAM's true power is
//   P = alpha * (C_full*VDD^2 + C_partial*Vswing*VDD) * f        (EQ 8)
// while a single effective capacitance fitted at a characterization
// voltage and scaled by VDD^2 (the plain Landman treatment) mispredicts
// it as soon as VDD moves.  This bench sweeps VDD and reports both
// predictions and the naive model's error — small at the
// characterization point, growing as VDD departs from it.
#include <cmath>
#include <cstdio>

#include "model/param.hpp"
#include "models/berkeley_library.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const model::Model& sram = lib.at("sram");

  constexpr double kWords = 4096, kBits = 16;
  constexpr double kVswing = 0.3;       // bit-line swing [V]
  constexpr double kFreq = 1e6;
  constexpr double kVchar = 1.5;        // characterization voltage

  auto true_power = [&](double vdd) {
    model::MapParamReader p;
    p.set("words", kWords);
    p.set("bits", kBits);
    p.set("vswing", kVswing);
    p.set("bitline_fraction", 0.6);
    p.set("vdd", vdd);
    p.set("f", kFreq);
    return sram.evaluate(p).total_power().si();
  };

  // Naive model: one effective coefficient extracted at kVchar, then
  // P = C_eff * VDD^2 * f.
  const double c_eff = true_power(kVchar) / (kVchar * kVchar * kFreq);

  std::printf("Reduced-swing SRAM (%g x %g, Vswing = %.2f V), "
              "characterized at %.2f V\n\n",
              kWords, kBits, kVswing, kVchar);
  std::printf("%-8s %-14s %-18s %-10s\n", "VDD [V]", "EQ 8 (true)",
              "C_eff*VDD^2 (naive)", "error");
  for (double vdd : {1.1, 1.3, 1.5, 2.0, 2.5, 3.0, 3.3}) {
    const double truth = true_power(vdd);
    const double naive = c_eff * vdd * vdd * kFreq;
    std::printf("%-8.2f %-14s %-18s %+9.1f%%\n", vdd,
                units::format_si(truth, "W").c_str(),
                units::format_si(naive, "W").c_str(),
                100.0 * (naive - truth) / truth);
  }

  std::printf("\nSwing sweep at VDD = 1.5 V (deeper swing reduction, "
              "bigger savings):\n");
  std::printf("%-10s %-14s %-10s\n", "Vswing", "power", "vs full swing");
  model::MapParamReader base;
  base.set("words", kWords);
  base.set("bits", kBits);
  base.set("vswing", 0.0);
  base.set("vdd", 1.5);
  base.set("f", kFreq);
  const double full = sram.evaluate(base).total_power().si();
  for (double vs : {0.0, 0.15, 0.3, 0.5, 0.75, 1.0, 1.5}) {
    model::MapParamReader p;
    p.set("words", kWords);
    p.set("bits", kBits);
    p.set("vswing", vs);
    p.set("vdd", 1.5);
    p.set("f", kFreq);
    const double watts = sram.evaluate(p).total_power().si();
    std::printf("%-10s %-14s %9.2fx\n",
                vs == 0 ? "full rail"
                        : units::format_si(vs, "V").c_str(),
                units::format_si(watts, "W").c_str(), watts / full);
  }

  std::printf("\nOrganization sweep (EQ 7 terms) at VDD = 1.5 V, "
              "full swing:\n");
  std::printf("%-8s %-6s %-14s %-14s\n", "words", "bits", "C_T", "E/access");
  for (auto [w, b] : {std::pair{256.0, 8.0}, {1024.0, 8.0}, {2048.0, 8.0},
                      {4096.0, 6.0}, {4096.0, 16.0}, {16384.0, 32.0}}) {
    model::MapParamReader p;
    p.set("words", w);
    p.set("bits", b);
    p.set("vdd", 1.5);
    p.set("f", 0.0);
    const auto e = sram.evaluate(p);
    std::printf("%-8.0f %-6.0f %-14s %-14s\n", w, b,
                units::format_si(e.switched_capacitance.si(), "F").c_str(),
                units::format_si(e.energy_per_op.si(), "J").c_str());
  }
  return 0;
}
