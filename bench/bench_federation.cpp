// bench_federation — what the federated model network costs and buys.
//
// Three operational questions:
//
//   fan-out cost   — federated search over 3 sites vs 1: the poll-loop
//                    fan-out should cost roughly the slowest host, not
//                    the sum of all hosts
//   hedge win rate — with one deliberately slow site, how often the
//                    p95-triggered duplicate request beats the primary,
//                    and what that does to fetch latency
//   degraded mode  — throughput and correctness with one of three
//                    sites dead: every result must be marked partial
//                    and still carry the dead site's models (mirror)
//
// Sites are real HttpServer + PowerPlayApp processes-in-miniature on
// loopback sockets, so the numbers include real connect/write/read
// scheduling, not just handler time.
//
//   ./bench_federation [out.json]   full run (defaults to BENCH_fed.json)
//   ./bench_federation --smoke      tiny run, correctness gates only
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "library/store.hpp"
#include "web/app.hpp"
#include "web/federation.hpp"
#include "web/server.hpp"

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using namespace powerplay;
using namespace std::chrono_literals;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("pp_bench_fed_" + std::string(tag) + "_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

model::UserModelDefinition bench_model(const std::string& name, int i) {
  model::UserModelDefinition def;
  def.name = name;
  def.category = model::Category::kComputation;
  def.documentation = "federation bench payload";
  def.params = {{"k", "scale", 1.0 + i, "", 0, 1e9, false}};
  def.c_fullswing = "k * 42e-15";
  return def;
}

/// One model-hosting site.  `slow_ms` > 0 injects a handler-side sleep
/// on /api/model fetches (the "distant, overloaded site").
struct Site {
  TempDir dir;
  std::unique_ptr<web::PowerPlayApp> app;
  std::unique_ptr<web::HttpServer> server;
  std::atomic<int> slow_ms{0};

  explicit Site(const char* tag) : dir(tag) {
    app = std::make_unique<web::PowerPlayApp>(library::LibraryStore(dir.path));
    server = std::make_unique<web::HttpServer>(
        0, [this](const web::Request& r) {
          const int delay = slow_ms.load();
          if (delay > 0 && r.target.rfind("/api/model?", 0) == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          }
          return app->handle(r);
        });
    server->start();
  }
  ~Site() {
    server->stop();
    app->shutdown();
  }
  [[nodiscard]] std::uint16_t port() const { return server->port(); }
  [[nodiscard]] std::string key() const {
    return "127.0.0.1:" + std::to_string(port());
  }
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  return sorted[static_cast<std::size_t>(p * (sorted.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fed.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int search_iters = smoke ? 10 : 200;
  const int hedge_iters = smoke ? 5 : 40;
  const int degraded_iters = smoke ? 10 : 100;
  const int models_per_site = smoke ? 3 : 10;

  Site a("a");
  Site b("b");
  Site c("c");
  const std::vector<Site*> sites = {&a, &b, &c};
  for (std::size_t s = 0; s < sites.size(); ++s) {
    for (int i = 0; i < models_per_site; ++i) {
      sites[s]->app->store().save_model(bench_model(
          "fedbench_s" + std::to_string(s) + "_" + std::to_string(i),
          static_cast<int>(s) * 100 + i));
    }
    sites[s]->app->store().save_model(bench_model("fedbench_everywhere", 7));
  }
  const std::size_t total_models =
      static_cast<std::size_t>(models_per_site) * sites.size() + 1;

  const web::Deadline kBudget = web::Deadline::after(5000ms);
  bool ok = true;

  // --- fan-out cost: 1 host vs 3 hosts ---------------------------------
  std::vector<double> lat1, lat3;
  {
    web::FederatedLibrary fed1;
    fed1.add_host(a.port());
    web::FederatedLibrary fed3;
    for (Site* s : sites) fed3.add_host(s->port());
    for (int i = 0; i < search_iters; ++i) {
      const auto t1 = Clock::now();
      const auto r1 = fed1.search("", web::Deadline::after(5000ms));
      lat1.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t1)
              .count());
      const auto t3 = Clock::now();
      const auto r3 = fed3.search("", web::Deadline::after(5000ms));
      lat3.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t3)
              .count());
      if (i == 0) {
        ok = ok && !r1.partial && !r3.partial &&
             r1.models.size() == static_cast<std::size_t>(models_per_site) + 1 &&
             r3.models.size() == total_models;
        if (!ok) std::fprintf(stderr, "fan-out merge gate failed\n");
      }
    }
  }
  const double p50_1 = percentile(lat1, 0.50);
  const double p95_1 = percentile(lat1, 0.95);
  const double p50_3 = percentile(lat3, 0.50);
  const double p95_3 = percentile(lat3, 0.95);

  // --- hedge win rate: one deliberately slow primary --------------------
  // The primary for a fresh federation is the lexicographically smallest
  // host key (health ties break by key), so make *that* site the slow
  // one and every fetch exercises the hedge path.
  Site* slow_site = sites[0];
  for (Site* s : sites) {
    if (s->key() < slow_site->key()) slow_site = s;
  }
  slow_site->slow_ms.store(120);
  int hedges_fired = 0;
  int hedge_wins = 0;
  std::vector<double> hedged_lat, unhedged_lat;
  for (int i = 0; i < hedge_iters; ++i) {
    // Fresh federation per fetch: health resets, so the slow site is the
    // primary every time (steady-state routing would demote it — that
    // demotion is the health scoring doing its job, not what we measure).
    web::FederationOptions options;
    options.hedge_min_delay = 20ms;
    web::FederatedLibrary fed(options);
    for (Site* s : sites) fed.add_host(s->port());
    const auto t0 = Clock::now();
    const auto r = fed.fetch_model("fedbench_everywhere", kBudget);
    hedged_lat.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    if (r.hedged) ++hedges_fired;
    if (r.hedge_won) ++hedge_wins;

    web::FederationOptions no_hedge;
    no_hedge.hedge_min_delay = 10'000ms;  // never fires
    web::FederatedLibrary plain(no_hedge);
    for (Site* s : sites) plain.add_host(s->port());
    const auto t1 = Clock::now();
    (void)plain.fetch_model("fedbench_everywhere", kBudget);
    unhedged_lat.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t1).count());
  }
  slow_site->slow_ms.store(0);
  const double hedge_win_rate =
      hedges_fired > 0 ? static_cast<double>(hedge_wins) / hedges_fired : 0;
  const double hedged_p50 = percentile(hedged_lat, 0.50);
  const double unhedged_p50 = percentile(unhedged_lat, 0.50);
  if (hedges_fired < 1 || hedge_wins < 1) {
    std::fprintf(stderr, "hedge gate failed: fired=%d won=%d\n",
                 hedges_fired, hedge_wins);
    ok = false;
  }

  // --- degraded mode: one of three sites dead ---------------------------
  web::FederationOptions degraded_options;
  degraded_options.breaker.failure_threshold = 1000;  // keep attempting
  web::FederatedLibrary fed(degraded_options);
  for (Site* s : sites) fed.add_host(s->port());
  if (fed.sync_now() != 3) {
    std::fprintf(stderr, "pre-kill sync failed\n");
    ok = false;
  }
  b.server->stop();  // site B goes dark, mirror keeps its models visible
  int partial_marked = 0;
  std::size_t merged_with_mirror = 0;
  const auto degraded_start = Clock::now();
  for (int i = 0; i < degraded_iters; ++i) {
    const auto r = fed.search("", web::Deadline::after(5000ms));
    if (r.partial && r.stale) ++partial_marked;
    if (i == 0) merged_with_mirror = r.models.size();
  }
  const double degraded_s =
      std::chrono::duration<double>(Clock::now() - degraded_start).count();
  const double degraded_per_s =
      degraded_s > 0 ? degraded_iters / degraded_s : 0;
  if (partial_marked != degraded_iters) {
    std::fprintf(stderr, "degraded results not all marked partial+stale\n");
    ok = false;
  }
  if (merged_with_mirror != total_models) {
    std::fprintf(stderr,
                 "mirror merge lost models: %zu of %zu visible\n",
                 merged_with_mirror, total_models);
    ok = false;
  }

  std::printf("fan-out   : search p50 %.2f ms (1 host)  %.2f ms (3 hosts); "
              "p95 %.2f / %.2f ms\n",
              p50_1, p50_3, p95_1, p95_3);
  std::printf("hedging   : %d fetches vs 120 ms-slow primary: fired %d, "
              "won %d (rate %.2f); p50 %.2f ms hedged vs %.2f ms unhedged\n",
              hedge_iters, hedges_fired, hedge_wins, hedge_win_rate,
              hedged_p50, unhedged_p50);
  std::printf("degraded  : %d searches with 1/3 sites dead: %.0f/s, "
              "%d/%d marked partial+stale, %zu/%zu models visible\n",
              degraded_iters, degraded_per_s, partial_marked,
              degraded_iters, merged_with_mirror, total_models);
  std::printf("gates     : %s\n", ok ? "pass" : "FAIL");

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"federation\",\n"
       << "  \"search_iters\": " << search_iters << ",\n"
       << "  \"search_1host_p50_ms\": " << p50_1 << ",\n"
       << "  \"search_1host_p95_ms\": " << p95_1 << ",\n"
       << "  \"search_3host_p50_ms\": " << p50_3 << ",\n"
       << "  \"search_3host_p95_ms\": " << p95_3 << ",\n"
       << "  \"hedge_fetches\": " << hedge_iters << ",\n"
       << "  \"hedges_fired\": " << hedges_fired << ",\n"
       << "  \"hedge_wins\": " << hedge_wins << ",\n"
       << "  \"hedge_win_rate\": " << hedge_win_rate << ",\n"
       << "  \"hedged_fetch_p50_ms\": " << hedged_p50 << ",\n"
       << "  \"unhedged_fetch_p50_ms\": " << unhedged_p50 << ",\n"
       << "  \"degraded_searches\": " << degraded_iters << ",\n"
       << "  \"degraded_searches_per_s\": " << degraded_per_s << ",\n"
       << "  \"degraded_partial_marked\": " << partial_marked << ",\n"
       << "  \"degraded_models_visible\": " << merged_with_mirror << ",\n"
       << "  \"total_models\": " << total_models << ",\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
