// bench_fig4_multiplier — regenerates Figure 4: the multiplier input
// form and result excerpt.
//
//   "C_T = bitwidthA * bitwidthB * 253 fF  (EQ 20)
//    The capacitive coefficient, 253 fF, is for non-correlated inputs.
//    PowerPlay also contains models for correlated inputs ...  The user
//    has the option on the input form of setting bit-widths and
//    multiplier type.  The feedback is virtually instantaneous, so the
//    user may cycle through many options."
//
// Sweeps bit-widths and the correlation flag, then supply voltage, as a
// user cycling through the form would.
#include <cstdio>

#include "model/param.hpp"
#include "models/berkeley_library.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();
  const model::Model& mult = lib.at("array_multiplier");

  auto evaluate = [&](double bwa, double bwb, bool correlated, double vdd,
                      double f) {
    model::MapParamReader p;
    p.set("bitwidthA", bwa);
    p.set("bitwidthB", bwb);
    p.set("correlated", correlated ? 1.0 : 0.0);
    p.set("alpha", 1.0);
    p.set("vdd", vdd);
    p.set("f", f);
    return mult.evaluate(p);
  };

  std::printf("Figure 4 — multiplier model (EQ 20) at vdd = 1.5 V, "
              "f = 1 MHz\n\n");
  std::printf("%-5s %-5s %-12s %-12s %-12s %-12s\n", "bwA", "bwB",
              "C_T (uncorr)", "E/op", "P", "C_T (corr)");
  for (int bw : {4, 8, 12, 16, 24, 32}) {
    const auto u = evaluate(bw, bw, false, 1.5, 1e6);
    const auto c = evaluate(bw, bw, true, 1.5, 1e6);
    std::printf("%-5d %-5d %-12s %-12s %-12s %-12s\n", bw, bw,
                units::format_si(u.switched_capacitance.si(), "F").c_str(),
                units::format_si(u.energy_per_op.si(), "J").c_str(),
                units::format_si(u.total_power().si(), "W").c_str(),
                units::format_si(c.switched_capacitance.si(), "F").c_str());
  }

  std::printf("\nAsymmetric operands (uncorrelated):\n");
  std::printf("%-5s %-5s %-12s\n", "bwA", "bwB", "C_T");
  for (auto [a, b] : {std::pair{8, 16}, {8, 24}, {16, 24}, {16, 32}}) {
    const auto e = evaluate(a, b, false, 1.5, 0);
    std::printf("%-5d %-5d %-12s\n", a, b,
                units::format_si(e.switched_capacitance.si(), "F").c_str());
  }

  std::printf("\nSupply what-if at 16x16 (energy scales as vdd^2):\n");
  std::printf("%-8s %-12s %-12s\n", "vdd [V]", "E/op", "P @ 1 MHz");
  for (double vdd : {1.1, 1.5, 2.0, 2.5, 3.3, 5.0}) {
    const auto e = evaluate(16, 16, false, vdd, 1e6);
    std::printf("%-8.2f %-12s %-12s\n", vdd,
                units::format_si(e.energy_per_op.si(), "J").c_str(),
                units::format_si(e.total_power().si(), "W").c_str());
  }

  const auto check = evaluate(16, 16, false, 1.5, 0);
  std::printf("\nEQ 20 check: 16*16*253fF = %s (model reports %s)\n",
              units::format_si(16.0 * 16.0 * 253e-15, "F").c_str(),
              units::format_si(check.switched_capacitance.si(), "F").c_str());
  return 0;
}
