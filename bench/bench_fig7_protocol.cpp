// bench_fig7_protocol — regenerates Figure 7: "Model access across the
// network", contrasting Silva's SMTP hub-relay scheme (top of the
// figure) with PowerPlay's on-demand HTTP URL-script scheme (bottom).
//
// The HTTP side is measured live against a loopback PowerPlay server;
// the SMTP side is an event-level simulation of the store-and-forward
// hub chain (per-hop handling latency plus the expected half polling
// interval of a mail hub).  The series reported: message transmissions
// and end-to-end latency versus hub count, and the payload-size scaling
// of the live HTTP path.
#include <cstdio>

#include "library/store.hpp"
#include "model/user_model.hpp"
#include "web/app.hpp"
#include "web/remote.hpp"
#include "web/server.hpp"

int main() {
  using namespace powerplay;
  using namespace powerplay::units::literals;

  // Live HTTP provider.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pp_fig7_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  web::PowerPlayApp app{library::LibraryStore(dir)};
  {
    model::UserModelDefinition def;
    def.name = "shared_filter";
    def.documentation = "characterized FIR datapath";
    def.params = {{"taps", "filter taps", 16, "", 1, 256, true}};
    def.c_fullswing = "taps * 2.2e-12";
    app.store().save_model(def);
  }
  web::HttpServer server(0, [&](const web::Request& r) {
    return app.handle(r);
  });
  server.start();

  // Warm up, then measure the median of several fetches.
  auto http_latency = [&] {
    std::vector<double> samples;
    for (int i = 0; i < 9; ++i) {
      samples.push_back(
          web::timed_fetch(server.port(), "/api/model?name=shared_filter")
              .latency.si());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  (void)http_latency();
  const double http_ms = http_latency() * 1e3;

  std::printf("Figure 7 — model access across the network\n\n");
  std::printf("HTTP URL-script scheme (measured, loopback):\n");
  std::printf("  messages per transfer: 2 (request + response)\n");
  std::printf("  median latency: %.3f ms\n\n", http_ms);

  std::printf("SMTP hub-relay scheme (simulated; 50 ms handling + 100 ms "
              "poll interval per hub):\n");
  std::printf("%-6s %-10s %-12s %-14s\n", "hubs", "messages", "latency",
              "vs HTTP");
  const std::string payload(2048, 'm');  // a typical model file
  for (int hubs : {0, 1, 2, 3, 4}) {
    const web::HubChain chain(hubs, 50.0_ms, 100.0_ms);
    const web::HubTransferResult r = chain.transfer(payload);
    std::printf("%-6d %-10d %-12s %10.0fx\n", hubs, r.messages,
                units::format_si(r.latency.si(), "s").c_str(),
                r.latency.si() * 1e3 / std::max(http_ms, 1e-6));
  }

  std::printf("\nHTTP payload-size scaling (measured):\n");
  std::printf("%-10s %-10s %-12s\n", "bytes", "status", "latency");
  for (std::size_t kb : {1u, 4u, 16u, 64u, 256u}) {
    // Serve synthetic payloads through a dedicated echo server.
    web::HttpServer echo(0, [kb](const web::Request&) {
      return web::Response::ok_text(std::string(kb * 1024, 'x'));
    });
    echo.start();
    const auto fetch = web::timed_fetch(echo.port(), "/payload");
    std::printf("%-10zu %-10s %-12.3f ms\n", fetch.bytes, "200",
                fetch.latency.si() * 1e3);
    echo.stop();
  }

  server.stop();
  std::filesystem::remove_all(dir);
  return 0;
}
