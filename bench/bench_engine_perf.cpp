// bench_engine_perf — google-benchmark timings backing the paper's
// interactivity claims: "The feedback is virtually instantaneous" for a
// model form, and the whole luminance exploration "was executed ... in
// less than three minutes".  Measures expression parse/eval, model
// evaluation, Play recompute (flat, hierarchical, intermodel fixed
// point), serialization, and a live HTTP round trip.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "expr/eval.hpp"
#include "expr/parser.hpp"
#include "library/serialize.hpp"
#include "library/store.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/design.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/server.hpp"

namespace {

using namespace powerplay;

const model::ModelRegistry& lib() {
  static const model::ModelRegistry registry = models::berkeley_library();
  return registry;
}

void BM_ExprParse(benchmark::State& state) {
  const std::string src =
      "pixel_rate / 16 + max(words * 20e-15, bits * 500e-15) * vdd^2";
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::parse(src));
  }
}
BENCHMARK(BM_ExprParse);

void BM_ExprEvaluate(benchmark::State& state) {
  const auto e = expr::parse(
      "pixel_rate / 16 + max(words * 20e-15, bits * 500e-15) * vdd^2");
  expr::Scope scope;
  scope.set("pixel_rate", 2e6);
  scope.set("words", 2048.0);
  scope.set("bits", 8.0);
  scope.set("vdd", 1.5);
  const auto fns = expr::FunctionTable::with_builtins();
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::evaluate(*e, scope, fns));
  }
}
BENCHMARK(BM_ExprEvaluate);

void BM_ModelEvaluateSram(benchmark::State& state) {
  model::MapParamReader p;
  p.set("words", 4096.0);
  p.set("bits", 16.0);
  p.set("vdd", 1.5);
  p.set("f", 2e6);
  const model::Model& sram = lib().at("sram");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sram.evaluate(p));
  }
}
BENCHMARK(BM_ModelEvaluateSram);

void BM_PlayLuminance(benchmark::State& state) {
  const sheet::Design d = studies::make_luminance_impl1(lib());
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.play());
  }
}
BENCHMARK(BM_PlayLuminance);

void BM_PlayInfoPadHierarchy(benchmark::State& state) {
  // Hierarchical + self-referential converter: the worst-case Play.
  const sheet::Design d = studies::make_infopad(lib());
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.play());
  }
}
BENCHMARK(BM_PlayInfoPadHierarchy);

void BM_PlayWideFlatSheet(benchmark::State& state) {
  // Scaling with row count.
  sheet::Design d("wide");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 1e6);
  for (int i = 0; i < state.range(0); ++i) {
    auto& row =
        d.add_row("r" + std::to_string(i), lib().find_shared("register"));
    row.params.set("bits", 8.0 + i % 8);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.play());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlayWideFlatSheet)->Range(8, 512)->Complexity();

void BM_DesignSerializeRoundTrip(benchmark::State& state) {
  const sheet::Design d = studies::make_luminance_impl2(lib());
  for (auto _ : state) {
    const std::string text = library::to_text(d);
    benchmark::DoNotOptimize(library::parse_design(text, lib(), nullptr));
  }
}
BENCHMARK(BM_DesignSerializeRoundTrip);

void BM_HttpModelFormRoundTrip(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pp_perf_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  web::PowerPlayApp app{library::LibraryStore(dir)};
  web::HttpServer server(0, [&](const web::Request& r) {
    return app.handle(r);
  });
  server.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(web::http_get(
        server.port(),
        "/model?user=perf&name=array_multiplier&p_bitwidthA=16"
        "&p_bitwidthB=16&p_correlated=0&p_alpha=1&p_vdd=1.5&p_f=2000000"));
  }
  server.stop();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_HttpModelFormRoundTrip);

}  // namespace

BENCHMARK_MAIN();
