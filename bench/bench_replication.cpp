// bench_replication — what journal shipping costs and delivers.
//
// Two numbers matter operationally:
//
//   apply throughput — how fast a follower chews through a backlog
//                      (snapshot bootstrap + journal catch-up), which
//                      bounds how quickly a replacement replica comes
//                      into service
//   steady-state lag — commit-to-visible latency once caught up, which
//                      the long-poll feed keeps at one round trip
//
// The transport is in-process (FunctionTransport straight into the
// primary app's handler) so the numbers isolate the replication engine:
// framing, parsing, idempotent apply, cursor flushes — not socket
// scheduling noise.
//
//   ./bench_replication [out.json]   full run (defaults to BENCH_repl.json)
//   ./bench_replication --smoke      tiny run, correctness checks only
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "library/store.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/repl.hpp"

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using namespace powerplay;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("pp_bench_repl_" + std::string(tag) + "_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

model::UserModelDefinition bench_model(int i) {
  model::UserModelDefinition def;
  def.name = "repl_bench_" + std::to_string(i);
  def.category = model::Category::kComputation;
  def.documentation = "replication bench payload";
  def.params = {{"k", "scale", 1.0 + i, "", 0, 1e9, false}};
  def.c_fullswing = "k * 42e-15";
  return def;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  return sorted[static_cast<std::size_t>(p * (sorted.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_repl.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int backlog = smoke ? 50 : 2000;
  const int steady_commits = smoke ? 10 : 200;

  TempDir primary_dir("primary");
  TempDir follower_dir("follower");
  web::PowerPlayApp primary{library::LibraryStore(primary_dir.path)};
  web::PowerPlayApp follower_app{library::LibraryStore(follower_dir.path)};
  follower_app.set_role(web::PowerPlayApp::ReplRole::kFollower, "http://x");

  // Phase 1: the primary accumulates a backlog before any follower
  // exists — the "replacement replica" scenario.
  for (int i = 0; i < backlog; ++i) {
    primary.store().save_model(bench_model(i));
  }

  web::ReplicationOptions options;
  options.poll_wait = std::chrono::milliseconds(1000);
  auto transport = std::make_shared<web::FunctionTransport>(
      [&](const web::Request& r) { return primary.handle(r); });
  web::ReplicationFollower follower(follower_app.store(), transport, options);

  // Catch-up: snapshot bootstrap plus journal tail, wall-clocked from
  // the first poll to convergence.
  const auto catchup_start = Clock::now();
  follower.start();
  if (!follower.wait_for_seq(primary.store().last_seq(),
                             std::chrono::seconds(120))) {
    std::fprintf(stderr, "follower never caught up on the backlog\n");
    return 1;
  }
  const double catchup_s =
      std::chrono::duration<double>(Clock::now() - catchup_start).count();
  const double apply_per_s = catchup_s > 0 ? backlog / catchup_s : 0;

  // Phase 2: steady state.  Each commit is timed from save_model
  // returning (the write is acknowledged and journaled) to the
  // follower's cursor covering it — the long-poll should make this one
  // in-process round trip, not a poll interval.
  std::vector<double> lag_ms;
  lag_ms.reserve(static_cast<std::size_t>(steady_commits));
  for (int i = 0; i < steady_commits; ++i) {
    primary.store().save_model(bench_model(backlog + i));
    const std::uint64_t seq = primary.store().last_seq();
    const auto committed = Clock::now();
    if (!follower.wait_for_seq(seq, std::chrono::seconds(30))) {
      std::fprintf(stderr, "steady-state commit %d never replicated\n", i);
      return 1;
    }
    lag_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - committed)
            .count());
  }
  const web::ReplicationStats stats = follower.stats();
  follower.stop();

  std::sort(lag_ms.begin(), lag_ms.end());
  const double lag_p50 = percentile(lag_ms, 0.50);
  const double lag_p99 = percentile(lag_ms, 0.99);

  // Correctness gates (enforced in smoke mode): a clean stream applies
  // every record exactly once — no gaps, no resyncs beyond the
  // bootstrap, cursor at the primary's head.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(steady_commits);
  const bool converged =
      stats.cursor_seq == primary.store().last_seq() &&
      stats.gaps_detected == 0 && stats.resyncs_total == 1 &&
      stats.records_applied >= expected;

  std::printf("backlog   : %d records bootstrapped+applied in %.3f s "
              "= %.0f records/s\n",
              backlog, catchup_s, apply_per_s);
  std::printf("steady    : %d commits, lag p50 %.2f ms  p99 %.2f ms\n",
              steady_commits, lag_p50, lag_p99);
  std::printf("follower  : applied %llu, duplicates %llu, gaps %llu, "
              "resyncs %llu, polls %llu\n",
              static_cast<unsigned long long>(stats.records_applied),
              static_cast<unsigned long long>(stats.duplicates_skipped),
              static_cast<unsigned long long>(stats.gaps_detected),
              static_cast<unsigned long long>(stats.resyncs_total),
              static_cast<unsigned long long>(stats.polls));
  std::printf("converged : %s (cursor %llu:%llu)\n",
              converged ? "yes" : "NO",
              static_cast<unsigned long long>(stats.cursor_epoch),
              static_cast<unsigned long long>(stats.cursor_seq));

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"replication\",\n"
       << "  \"backlog_records\": " << backlog << ",\n"
       << "  \"catchup_seconds\": " << catchup_s << ",\n"
       << "  \"apply_records_per_s\": " << apply_per_s << ",\n"
       << "  \"steady_commits\": " << steady_commits << ",\n"
       << "  \"steady_lag_p50_ms\": " << lag_p50 << ",\n"
       << "  \"steady_lag_p99_ms\": " << lag_p99 << ",\n"
       << "  \"records_applied\": " << stats.records_applied << ",\n"
       << "  \"duplicates_skipped\": " << stats.duplicates_skipped << ",\n"
       << "  \"gaps_detected\": " << stats.gaps_detected << ",\n"
       << "  \"resyncs_total\": " << stats.resyncs_total << ",\n"
       << "  \"converged\": " << (converged ? "true" : "false") << "\n"
       << "}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("wrote %s\n", out_path.c_str());

  // Smoke gates on correctness; full runs additionally expect the
  // apply path to beat one record per poll interval by a wide margin.
  if (smoke) return converged ? 0 : 1;
  return converged && apply_per_s > 100 ? 0 : 1;
}
