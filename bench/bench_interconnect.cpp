// bench_interconnect — the Interconnect section's Rent's-rule estimation
// (Donath/Feuer): average wire length versus block count and Rent
// exponent, and interconnect power driven by the active area already on
// the spreadsheet (the totalarea() intermodel interaction).
#include <cstdio>

#include "model/param.hpp"
#include "models/berkeley_library.hpp"
#include "models/interconnect.hpp"
#include "sheet/design.hpp"

int main() {
  using namespace powerplay;
  const auto lib = models::berkeley_library();

  std::printf("Donath average wire length [gate pitches]\n");
  std::printf("%-10s", "N \\ p");
  for (double p : {0.3, 0.5, 0.6, 0.7, 0.8}) std::printf(" %-9.1f", p);
  std::printf("\n");
  for (double n : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    std::printf("%-10.0e", n);
    for (double p : {0.3, 0.5, 0.6, 0.7, 0.8}) {
      std::printf(" %-9.2f", models::donath_average_length(n, p));
    }
    std::printf("\n");
  }

  std::printf("\nRent terminal counts T = t*N^p (t = 3):\n");
  std::printf("%-10s %-10s %-10s\n", "blocks", "p=0.5", "p=0.7");
  for (double n : {64.0, 1024.0, 16384.0}) {
    std::printf("%-10.0f %-10.1f %-10.1f\n", n,
                models::rent_terminals(n, 3, 0.5),
                models::rent_terminals(n, 3, 0.7));
  }

  std::printf("\nInterconnect power vs active area (10k blocks, p = 0.6, "
              "vdd = 1.5 V, f = 10 MHz, alpha = 0.15):\n");
  std::printf("%-12s %-14s\n", "area [mm^2]", "power");
  for (double mm2 : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    model::MapParamReader p;
    p.set("n_blocks", 1e4);
    p.set("rent_exponent", 0.6);
    p.set("active_area", mm2 * 1e-6);
    p.set("vdd", 1.5);
    p.set("f", 10e6);
    std::printf("%-12.2f %-14s\n", mm2,
                units::format_si(
                    lib.at("interconnect").evaluate(p).total_power().si(),
                    "W")
                    .c_str());
  }

  std::printf("\nRent-exponent sensitivity (1 mm^2, 10k blocks):\n");
  std::printf("%-6s %-14s\n", "p", "power");
  for (double rent : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    model::MapParamReader p;
    p.set("n_blocks", 1e4);
    p.set("rent_exponent", rent);
    p.set("active_area", 1e-6);
    p.set("vdd", 1.5);
    p.set("f", 10e6);
    std::printf("%-6.1f %-14s\n", rent,
                units::format_si(
                    lib.at("interconnect").evaluate(p).total_power().si(),
                    "W")
                    .c_str());
  }

  // The intermodel flow: interconnect and clock sized from the area of
  // the actual datapath rows, as a sheet user would do.
  std::printf("\nSheet with area-driven wiring + clock rows "
              "(totalarea() interaction):\n");
  sheet::Design d("datapath_with_wires");
  d.globals().set("vdd", 1.5);
  d.globals().set("f", 10e6);
  auto& mul = d.add_row("Multiplier", lib.find_shared("array_multiplier"));
  mul.params.set("bitwidthA", 16.0);
  mul.params.set("bitwidthB", 16.0);
  auto& add = d.add_row("Adder", lib.find_shared("ripple_adder"));
  add.params.set("bitwidth", 32.0);
  auto& rf = d.add_row("RegFile", lib.find_shared("register_file"));
  rf.params.set("words", 32.0);
  rf.params.set("bits", 32.0);
  auto& wires = d.add_row("Wiring", lib.find_shared("interconnect"));
  wires.params.set("n_blocks", 3000.0);
  wires.params.set_formula("active_area",
                           "totalarea() - rowarea(\"Wiring\")");
  auto& clk = d.add_row("Clock", lib.find_shared("clock_tree"));
  clk.params.set("n_sinks", 96.0);
  clk.params.set_formula("active_area",
                         "totalarea() - rowarea(\"Wiring\")");
  const auto r = d.play();
  for (const auto& row : r.rows) {
    std::printf("  %-12s %10s  (area %s)\n", row.name.c_str(),
                units::format_si(row.estimate.total_power().si(), "W")
                    .c_str(),
                units::format_area(row.estimate.area.si()).c_str());
  }
  std::printf("  %-12s %10s   (%d fixed-point sweeps)\n", "TOTAL",
              units::format_si(r.total.total_power().si(), "W").c_str(),
              r.iterations);
  return 0;
}
