// bench_parallel_sweep — serial interpreter vs. compiled-plan vs.
// engine-backed sweep on the 8x8 vdd x pixel_rate grid of the VQ
// luminance chip (impl 2), plus the memoized-Play warm path, plus the
// lane-batched columnar path against the warm scalar engine on a dense
// 64x64 grid.  Emits BENCH_engine.json (argv[1] overrides the output
// path) with the timings, speedups and cache hit-rate, and asserts
// every path is bit-identical to the serial interpreter loop (and the
// columnar path bit-identical to the scalar engine).
//
// `--smoke [path]` runs only the dense section with small rep counts
// for ctest: gated on columnar-vs-scalar bit-identity and a >= 3x
// batch-vs-warm-scalar speedup, not wall clock.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "engine/engine.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/batch.hpp"
#include "sheet/plan.hpp"
#include "sheet/sweep.hpp"
#include "studies/vq.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Time one invocation of `fn`, folding it into the best-of accumulator.
template <typename Fn>
void timed_min(double& best, Fn&& fn) {
  const auto t0 = Clock::now();
  fn();
  const std::chrono::duration<double> dt = Clock::now() - t0;
  if (dt.count() < best) best = dt.count();
}

bool bit_identical(const powerplay::sheet::GridSweep& a,
                   const powerplay::sheet::GridSweep& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].size() != b.results[i].size()) return false;
    for (std::size_t j = 0; j < a.results[i].size(); ++j) {
      if (a.results[i][j].total.total_power().si() !=
              b.results[i][j].total.total_power().si() ||
          a.results[i][j].total.energy_per_op.si() !=
              b.results[i][j].total.energy_per_op.si()) {
        return false;
      }
    }
  }
  return true;
}

/// Columnar-vs-scalar differential: every power/energy double of the
/// batched grid must equal the scalar engine's bit for bit.
bool columns_identical(const powerplay::sheet::ColumnarGrid& cols,
                       const powerplay::sheet::GridSweep& grid) {
  if (cols.cols.size() != grid.xs.size() * grid.ys.size()) return false;
  for (std::size_t i = 0; i < grid.xs.size(); ++i) {
    for (std::size_t j = 0; j < grid.ys.size(); ++j) {
      const std::size_t k = i * grid.ys.size() + j;
      if (cols.cols.power_w[k] !=
              grid.results[i][j].total.total_power().si() ||
          cols.cols.energy_j[k] !=
              grid.results[i][j].total.energy_per_op.si()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::string out_path =
      smoke ? (argc > 2 ? argv[2] : std::string("BENCH_engine_smoke.json"))
            : (argc > 1 ? argv[1] : std::string("BENCH_engine.json"));

  constexpr int kGrid = 8;
  constexpr int kDense = 64;
  const int kReps = smoke ? 2 : 5;
  // Size the pool to the machine: oversubscribing a small host charges
  // context switches to the engine rows that no deployment would pay.
  const std::size_t kThreads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  const auto lib = models::berkeley_library();
  const sheet::Design design = studies::make_luminance_impl2(lib);
  const std::vector<double> vdds = sheet::linspace(1.0, 3.0, kGrid);
  const std::vector<double> rates = sheet::linspace(1e6, 4e6, kGrid);

  std::printf("bench_parallel_sweep: %dx%d grid (vdd x pixel_rate), "
              "%zu engine threads, best of %d%s\n\n",
              kGrid, kGrid, kThreads, kReps, smoke ? " [smoke]" : "");

  // The four paths are measured round-robin inside each repetition, not
  // as four back-to-back phases: on a shared host the clock drifts over
  // the run, and a phase measured a second later than the baseline
  // would absorb (or dodge) that drift.  Interleaving lands any slow
  // spell on every row equally, and best-of-reps then discards it.
  engine::EvalEngine engine({{kThreads, 256}, 4096});
  sheet::GridSweep serial_grid;
  sheet::GridSweep compiled_grid;
  compiled_grid.x_param = "vdd";
  compiled_grid.y_param = "pixel_rate";
  compiled_grid.xs = vdds;
  compiled_grid.ys = rates;
  sheet::GridSweep cold_grid;
  sheet::GridSweep warm_grid;
  double t_serial = 1e300;
  double t_compiled = 1e300;
  double t_cold = 1e300;
  double t_warm = 1e300;
  bool identical = true;
  if (!smoke) {
    for (int rep = 0; rep < kReps; ++rep) {
      // Serial baseline: the reference interpreter, clone per point.
      timed_min(t_serial, [&] {
        serial_grid =
            sheet::sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
      });

      // Compiled plan, serial: one PlanInstance, the swept slots re-bound
      // per point — the interpreter-vs-bytecode comparison with no
      // threading or memoization in the way.
      timed_min(t_compiled, [&] {
        const auto plan = sheet::EvalPlan::compile(design);
        const auto vdd_slot = *plan->global_slot("vdd");
        const auto rate_slot = *plan->global_slot("pixel_rate");
        sheet::PlanInstance inst(plan);
        inst.bind_from(design);
        compiled_grid.results.assign(
            vdds.size(), std::vector<sheet::PlayResult>(rates.size()));
        for (std::size_t i = 0; i < vdds.size(); ++i) {
          inst.bind(vdd_slot, vdds[i]);
          for (std::size_t j = 0; j < rates.size(); ++j) {
            inst.bind(rate_slot, rates[j]);
            compiled_grid.results[i][j] = inst.play();
          }
        }
      });

      // Engine, cold cache: a standing engine (the web app keeps one for
      // the process lifetime) with Play and plan caches cleared before
      // the rep, so every point is a real compiled Play fanned out over
      // the executor and the plan is recompiled — the first-request
      // cost, without charging thread spawn to each sweep.
      engine.cache().clear();
      engine.plans().clear();
      timed_min(t_cold, [&] {
        cold_grid =
            engine.sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
      });

      // Engine, warm cache: the same sweep again — the cold rep above
      // filled the cache, so every point is a derived key + cache hit.
      timed_min(t_warm, [&] {
        warm_grid =
            engine.sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
      });
    }
    identical = bit_identical(serial_grid, compiled_grid) &&
                bit_identical(serial_grid, cold_grid) &&
                bit_identical(serial_grid, warm_grid);
  }

  // Dense 64x64 section: the lane-batched columnar path against the
  // warm scalar engine.  A separate engine whose Play cache holds the
  // whole dense grid (8192 > 64*64) so "warm" really is all hits, and
  // the comparison isolates what the batch path removes: per-point
  // cache probes under the global cache mutex and PlayResult deep
  // copies.  Interleaved per rep like the 8x8 section.
  const std::vector<double> dvdds = sheet::linspace(1.0, 3.0, kDense);
  const std::vector<double> drates = sheet::linspace(1e6, 4e6, kDense);
  engine::EvalEngine dense_engine({{kThreads, 256}, 8192});
  sheet::GridSweep dense_grid;
  sheet::ColumnarGrid batch_cold_grid;
  sheet::ColumnarGrid batch_warm_grid;
  double t_dense_warm = 1e300;
  double t_batch_cold = 1e300;
  double t_batch_warm = 1e300;
  const int kDenseReps = smoke ? 2 : kReps;
  // Fill the Play cache (and compile the plan) before timing.
  dense_grid =
      dense_engine.sweep_grid(design, "vdd", dvdds, "pixel_rate", drates);
  for (int rep = 0; rep < kDenseReps; ++rep) {
    timed_min(t_dense_warm, [&] {
      dense_grid =
          dense_engine.sweep_grid(design, "vdd", dvdds, "pixel_rate", drates);
    });

    // Batch, cold plan: the plan cache is cleared so the rep pays one
    // plan compile before its lane blocks — the first-request cost of
    // the columnar path (it never touches the Play cache at all).
    dense_engine.plans().clear();
    timed_min(t_batch_cold, [&] {
      batch_cold_grid = dense_engine.sweep_grid_columnar(
          design, "vdd", dvdds, "pixel_rate", drates);
    });

    // Batch, warm plan: the steady-state columnar sweep.
    timed_min(t_batch_warm, [&] {
      batch_warm_grid = dense_engine.sweep_grid_columnar(
          design, "vdd", dvdds, "pixel_rate", drates);
    });
  }
  const bool batch_identical = columns_identical(batch_cold_grid, dense_grid) &&
                               columns_identical(batch_warm_grid, dense_grid);
  const double speedup_batch_vs_warm = t_dense_warm / t_batch_warm;

  const engine::CacheStats cache = engine.cache().stats();
  const double hit_rate =
      cache.hits + cache.misses == 0
          ? 0.0
          : static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses);

  const double speedup_compiled = t_serial / t_compiled;
  const double speedup_cold = t_serial / t_cold;
  const double speedup_warm = t_serial / t_warm;

  if (!smoke) {
    std::printf("serial interpreter: %9.3f ms\n", t_serial * 1e3);
    std::printf("compiled (serial) : %9.3f ms   speedup %.2fx\n",
                t_compiled * 1e3, speedup_compiled);
    std::printf("engine (cold)     : %9.3f ms   speedup %.2fx\n",
                t_cold * 1e3, speedup_cold);
    std::printf("engine (warm)     : %9.3f ms   speedup %.2fx\n",
                t_warm * 1e3, speedup_warm);
    std::printf("cache             : %zu hits / %zu misses "
                "(hit rate %.1f%%), %zu/%zu entries\n",
                cache.hits, cache.misses, 100.0 * hit_rate, cache.size,
                cache.capacity);
    std::printf("bit-identical     : %s\n\n", identical ? "yes" : "NO");
  }
  std::printf("dense %dx%d grid:\n", kDense, kDense);
  std::printf("engine (warm)     : %9.3f ms\n", t_dense_warm * 1e3);
  std::printf("batch (cold plan) : %9.3f ms   vs warm %.2fx\n",
              t_batch_cold * 1e3, t_dense_warm / t_batch_cold);
  std::printf("batch (warm plan) : %9.3f ms   vs warm %.2fx\n",
              t_batch_warm * 1e3, speedup_batch_vs_warm);
  std::printf("batch identical   : %s\n", batch_identical ? "yes" : "NO");

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"parallel_sweep\",\n"
       << "  \"design\": \"" << design.name() << "\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"engine_threads\": " << kThreads << ",\n"
       << "  \"repetitions\": " << kReps << ",\n";
  if (!smoke) {
    json << "  \"grid\": [" << kGrid << ", " << kGrid << "],\n"
         << "  \"axes\": [\"vdd\", \"pixel_rate\"],\n"
         << "  \"serial_ms\": " << t_serial * 1e3 << ",\n"
         << "  \"compiled_serial_ms\": " << t_compiled * 1e3 << ",\n"
         << "  \"engine_cold_ms\": " << t_cold * 1e3 << ",\n"
         << "  \"engine_warm_ms\": " << t_warm * 1e3 << ",\n"
         << "  \"speedup_compiled\": " << speedup_compiled << ",\n"
         << "  \"speedup_cold\": " << speedup_cold << ",\n"
         << "  \"speedup_warm\": " << speedup_warm << ",\n"
         << "  \"cache_hits\": " << cache.hits << ",\n"
         << "  \"cache_misses\": " << cache.misses << ",\n"
         << "  \"cache_hit_rate\": " << hit_rate << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false")
         << ",\n";
  }
  json << "  \"dense_grid\": [" << kDense << ", " << kDense << "],\n"
       << "  \"dense_warm_ms\": " << t_dense_warm * 1e3 << ",\n"
       << "  \"batch_cold_ms\": " << t_batch_cold * 1e3 << ",\n"
       << "  \"batch_warm_ms\": " << t_batch_warm * 1e3 << ",\n"
       << "  \"batch_lane_width\": "
       << sheet::BatchPlanInstance::kLaneWidth << ",\n"
       << "  \"speedup_batch_vs_warm\": " << speedup_batch_vs_warm << ",\n"
       << "  \"batch_bit_identical\": "
       << (batch_identical ? "true" : "false") << "\n"
       << "}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());

  bool ok = identical && batch_identical;
  if (smoke && speedup_batch_vs_warm < 3.0) {
    std::printf("SMOKE FAIL: batch %.2fx vs warm scalar (< 3x)\n",
                speedup_batch_vs_warm);
    ok = false;
  }
  return ok ? 0 : 1;
}
