// bench_parallel_sweep — serial vs. engine-backed sweep on the 8x8
// vdd x pixel_rate grid of the VQ luminance chip (impl 2), plus the
// memoized-Play warm path.  Emits BENCH_engine.json (argv[1] overrides
// the output path) with the timings, speedups and cache hit-rate, and
// asserts the engine results are bit-identical to the serial loop.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/sweep.hpp"
#include "studies/vq.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-N wall time of `fn`, in seconds.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double> dt = Clock::now() - t0;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

bool bit_identical(const powerplay::sheet::GridSweep& a,
                   const powerplay::sheet::GridSweep& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].size() != b.results[i].size()) return false;
    for (std::size_t j = 0; j < a.results[i].size(); ++j) {
      if (a.results[i][j].total.total_power().si() !=
              b.results[i][j].total.total_power().si() ||
          a.results[i][j].total.energy_per_op.si() !=
              b.results[i][j].total.energy_per_op.si()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;
  constexpr int kGrid = 8;
  constexpr int kReps = 5;
  constexpr std::size_t kThreads = 4;

  const auto lib = models::berkeley_library();
  const sheet::Design design = studies::make_luminance_impl2(lib);
  const std::vector<double> vdds = sheet::linspace(1.0, 3.0, kGrid);
  const std::vector<double> rates = sheet::linspace(1e6, 4e6, kGrid);

  std::printf("bench_parallel_sweep: %dx%d grid (vdd x pixel_rate), "
              "%zu engine threads, best of %d\n\n",
              kGrid, kGrid, kThreads, kReps);

  // Serial baseline.
  sheet::GridSweep serial_grid;
  const double t_serial = best_of(kReps, [&] {
    serial_grid = sheet::sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
  });

  // Engine, cold cache: a fresh engine every rep, so every point is a
  // real Play fanned out over the executor.
  sheet::GridSweep cold_grid;
  const double t_cold = best_of(kReps, [&] {
    engine::EvalEngine fresh({{kThreads, 256}, 4096});
    cold_grid =
        fresh.sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
  });

  // Engine, warm cache: one engine, repeated sweep of the unchanged
  // design — every point is a fingerprint + cache hit.
  engine::EvalEngine engine({{kThreads, 256}, 4096});
  sheet::GridSweep warm_grid =
      engine.sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
  const double t_warm = best_of(kReps, [&] {
    warm_grid = engine.sweep_grid(design, "vdd", vdds, "pixel_rate", rates);
  });
  const engine::CacheStats cache = engine.cache().stats();
  const double hit_rate =
      cache.hits + cache.misses == 0
          ? 0.0
          : static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses);

  const bool identical = bit_identical(serial_grid, cold_grid) &&
                         bit_identical(serial_grid, warm_grid);

  const double speedup_cold = t_serial / t_cold;
  const double speedup_warm = t_serial / t_warm;

  std::printf("serial            : %9.3f ms\n", t_serial * 1e3);
  std::printf("engine (cold)     : %9.3f ms   speedup %.2fx\n",
              t_cold * 1e3, speedup_cold);
  std::printf("engine (warm)     : %9.3f ms   speedup %.2fx\n",
              t_warm * 1e3, speedup_warm);
  std::printf("cache             : %zu hits / %zu misses "
              "(hit rate %.1f%%), %zu/%zu entries\n",
              cache.hits, cache.misses, 100.0 * hit_rate, cache.size,
              cache.capacity);
  std::printf("bit-identical     : %s\n", identical ? "yes" : "NO");

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"parallel_sweep\",\n"
       << "  \"design\": \"" << design.name() << "\",\n"
       << "  \"grid\": [" << kGrid << ", " << kGrid << "],\n"
       << "  \"axes\": [\"vdd\", \"pixel_rate\"],\n"
       << "  \"engine_threads\": " << kThreads << ",\n"
       << "  \"repetitions\": " << kReps << ",\n"
       << "  \"serial_ms\": " << t_serial * 1e3 << ",\n"
       << "  \"engine_cold_ms\": " << t_cold * 1e3 << ",\n"
       << "  \"engine_warm_ms\": " << t_warm * 1e3 << ",\n"
       << "  \"speedup_cold\": " << speedup_cold << ",\n"
       << "  \"speedup_warm\": " << speedup_warm << ",\n"
       << "  \"cache_hits\": " << cache.hits << ",\n"
       << "  \"cache_misses\": " << cache.misses << ",\n"
       << "  \"cache_hit_rate\": " << hit_rate << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_engine.json");
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());

  return identical ? 0 : 1;
}
