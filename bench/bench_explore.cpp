// bench_explore — throughput of the design-space exploration engine on
// the VQ luminance chip (impl 2): Monte Carlo points/s through the
// compiled-plan engine, and a fitted poly2 surrogate raced against
// exact plan evaluation on the same points.  Emits BENCH_explore.json
// (argv path overrides) and exits non-zero unless the surrogate is
// both faster than the exact plan (>= 5x) and within its own reported
// holdout error bound — `--smoke` shrinks the counts for ctest but
// keeps both gates.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "explore/mc.hpp"
#include "explore/surrogate.hpp"
#include "models/berkeley_library.hpp"
#include "sheet/plan.hpp"
#include "studies/vq.hpp"

namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
double timed_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double> dt = Clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;

  bool smoke = false;
  std::string out_path = "BENCH_explore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::size_t mc_samples = smoke ? 2000 : 50000;
  const std::size_t race_points = smoke ? 5000 : 200000;
  const int reps = smoke ? 2 : 5;
  const std::size_t threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  const auto lib = models::berkeley_library();
  const sheet::Design design = studies::make_luminance_impl2(lib);
  engine::EvalEngine engine({{threads, 256}, 4096});

  std::printf("bench_explore: %s, %zu engine threads\n\n",
              smoke ? "smoke" : "full", threads);

  // --- Monte Carlo throughput ----------------------------------------------
  explore::McSpec mc;
  mc.params = explore::parse_dist_params(
      "vdd=uniform(1.35,1.65);pixel_rate=uniform(1e6,4e6)");
  mc.samples = mc_samples;
  mc.seed = 7;
  explore::McResult mc_result;
  const double t_mc = timed_best(reps, [&] {
    // Fresh Play cache per rep: every point is a real compiled Play,
    // not a memoized hit on the previous repetition's identical run.
    engine.cache().clear();
    mc_result = explore::run_monte_carlo(engine, design, mc);
  });
  const double mc_points_per_s = static_cast<double>(mc_samples) / t_mc;
  std::printf("monte carlo       : %zu points in %8.3f ms  (%.0f points/s)\n",
              mc_samples, t_mc * 1e3, mc_points_per_s);

  // --- surrogate vs exact plan ----------------------------------------------
  explore::FitSpec fit_spec;
  fit_spec.model_name = "bench_surrogate";
  fit_spec.params = mc.params;
  fit_spec.samples = 256;
  fit_spec.seed = 11;
  const explore::FitResult fit =
      explore::fit_surrogate(engine, design, fit_spec);
  std::printf("surrogate fit     : basis=%s r2=%.6f max_rel_err=%.3e\n",
              fit.diagnostics.basis.c_str(), fit.diagnostics.r2,
              fit.diagnostics.max_rel_err);

  // Race on a fresh deterministic point set, both paths serial — this
  // compares arithmetic, not thread counts.
  const auto points =
      explore::sample_points(fit_spec.params, race_points, 23);
  std::vector<double> exact(points.size());
  const double t_exact = timed_best(reps, [&] {
    const auto plan = sheet::EvalPlan::compile(design);
    const auto vdd_slot = *plan->global_slot("vdd");
    const auto rate_slot = *plan->global_slot("pixel_rate");
    sheet::PlanInstance inst(plan);
    inst.bind_from(design);
    for (std::size_t i = 0; i < points.size(); ++i) {
      inst.bind(vdd_slot, points[i][0]);
      inst.bind(rate_slot, points[i][1]);
      exact[i] = inst.play().total.total_power().si();
    }
  });
  std::vector<double> predicted(points.size());
  const double t_surrogate = timed_best(reps, [&] {
    for (std::size_t i = 0; i < points.size(); ++i) {
      predicted[i] = explore::surrogate_predict(fit, points[i]);
    }
  });
  const double speedup = t_exact / t_surrogate;
  std::printf("exact plan        : %zu points in %8.3f ms\n", points.size(),
              t_exact * 1e3);
  std::printf("surrogate         : %zu points in %8.3f ms  (%.1fx)\n",
              points.size(), t_surrogate * 1e3, speedup);

  // Accuracy gate: every raced point stays within a small multiple of
  // the reported holdout bound (the race points are drawn from the
  // training distribution, not the holdout split, hence the headroom).
  double worst = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double denom = std::max(std::abs(exact[i]), 1e-30);
    worst = std::max(worst, std::abs(predicted[i] - exact[i]) / denom);
  }
  const double bound = 4 * fit.diagnostics.max_rel_err + 1e-12;
  const bool accurate = worst <= bound;
  const bool fast = speedup >= 5.0;
  std::printf("accuracy          : worst rel err %.3e (bound %.3e) %s\n",
              worst, bound, accurate ? "ok" : "FAIL");
  std::printf("speedup gate      : >= 5x %s\n", fast ? "ok" : "FAIL");

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"explore\",\n"
       << "  \"design\": \"" << design.name() << "\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"engine_threads\": " << threads << ",\n"
       << "  \"mc_samples\": " << mc_samples << ",\n"
       << "  \"mc_seconds\": " << t_mc << ",\n"
       << "  \"mc_points_per_s\": " << mc_points_per_s << ",\n"
       << "  \"mc_mean_w\": " << mc_result.mean_w << ",\n"
       << "  \"fit_basis\": \"" << fit.diagnostics.basis << "\",\n"
       << "  \"fit_r2\": " << fit.diagnostics.r2 << ",\n"
       << "  \"fit_max_rel_err\": " << fit.diagnostics.max_rel_err << ",\n"
       << "  \"race_points\": " << points.size() << ",\n"
       << "  \"exact_seconds\": " << t_exact << ",\n"
       << "  \"surrogate_seconds\": " << t_surrogate << ",\n"
       << "  \"surrogate_speedup\": " << speedup << ",\n"
       << "  \"surrogate_worst_rel_err\": " << worst << ",\n"
       << "  \"gates_passed\": "
       << ((accurate && fast) ? "true" : "false") << "\n"
       << "}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());

  return (accurate && fast) ? 0 : 1;
}
