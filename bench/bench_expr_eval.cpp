// bench_expr_eval — tree-walk interpreter vs. compiled bytecode on the
// kind of formulas PowerPlay sheets actually hold: capacitance-scaling
// arithmetic, conditional supply selection, and formula-on-formula
// parameter chains.  Reports evaluations/second for both paths and the
// resulting speedup, emits BENCH_expr.json (argv[1] overrides the
// output path), and exits non-zero if the two paths ever disagree
// bit-for-bit.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "expr/parser.hpp"

namespace {

using namespace powerplay;
using Clock = std::chrono::steady_clock;

std::uint64_t bit_pattern(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

struct Case {
  const char* name;
  const char* source;
};

// Formula shapes lifted from the study sheets (EQ 4 switched
// capacitance, converter efficiency selection, LUT sizing chains).
constexpr Case kCases[] = {
    {"switched_cap", "0.5 * c_unit * bits * vdd * vdd * f * alpha"},
    {"supply_select",
     "if(vdd > 2.5, p_high * vdd / 3.3, p_low * pow(vdd / 1.5, 2))"},
    {"lut_sizing",
     "words * bits * (c_cell + c_wire * sqrt(words)) + decode * log2(words)"},
    {"formula_chain", "alpha * beta + gamma"},
};

}  // namespace

int main(int argc, char** argv) {
  constexpr int kWarmup = 1000;
  constexpr int kIters = 200000;

  expr::Scope scope;
  scope.set("c_unit", 1.2e-12);
  scope.set("bits", 24.0);
  scope.set("vdd", 1.5);
  scope.set("f", 2.0e6);
  scope.set("alpha", 0.35);
  scope.set("p_high", 0.9);
  scope.set("p_low", 0.15);
  scope.set("words", 1024.0);
  scope.set("c_cell", 5.0e-15);
  scope.set("c_wire", 2.0e-16);
  scope.set("decode", 1.1e-13);
  // A three-deep formula chain: every evaluate() re-resolves the chain.
  scope.set_formula("beta", "bits / 8 * alpha");
  scope.set_formula("gamma", "beta * c_unit * 1e12");
  const expr::FunctionTable& fns = expr::FunctionTable::builtins();

  std::printf("bench_expr_eval: %d evaluations per case\n\n", kIters);

  std::ostringstream cases_json;
  bool identical = true;
  double speedup_sum = 0.0;
  int case_count = 0;

  for (const Case& c : kCases) {
    const expr::ExprPtr ast = expr::parse(c.source);

    double interp_value = 0.0;
    const auto t0 = Clock::now();
    for (int i = 0; i < kWarmup + kIters; ++i) {
      interp_value = expr::evaluate(*ast, scope, fns);
    }
    const std::chrono::duration<double> dt_interp = Clock::now() - t0;

    expr::CompiledExpr compiled(*ast, scope, fns);
    double compiled_value = 0.0;
    const auto t1 = Clock::now();
    for (int i = 0; i < kWarmup + kIters; ++i) {
      compiled_value = compiled.evaluate();
    }
    const std::chrono::duration<double> dt_compiled = Clock::now() - t1;

    const bool same = bit_pattern(interp_value) == bit_pattern(compiled_value);
    identical = identical && same;

    const double interp_rate = (kWarmup + kIters) / dt_interp.count();
    const double compiled_rate = (kWarmup + kIters) / dt_compiled.count();
    const double speedup = compiled_rate / interp_rate;
    speedup_sum += speedup;
    ++case_count;

    std::printf("%-14s interp %10.0f eval/s   compiled %10.0f eval/s   "
                "%5.2fx   %s\n",
                c.name, interp_rate, compiled_rate, speedup,
                same ? "bit-identical" : "MISMATCH");

    if (case_count > 1) cases_json << ",\n";
    cases_json << "    {\"name\": \"" << c.name << "\", "
               << "\"interp_evals_per_s\": " << interp_rate << ", "
               << "\"compiled_evals_per_s\": " << compiled_rate << ", "
               << "\"speedup\": " << speedup << ", "
               << "\"bit_identical\": " << (same ? "true" : "false") << "}";
  }

  const double mean_speedup = speedup_sum / case_count;
  std::printf("\nmean speedup      : %.2fx\n", mean_speedup);
  std::printf("bit-identical     : %s\n", identical ? "yes" : "NO");

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"expr_eval\",\n"
       << "  \"iterations\": " << kIters << ",\n"
       << "  \"cases\": [\n"
       << cases_json.str() << "\n"
       << "  ],\n"
       << "  \"mean_speedup\": " << mean_speedup << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_expr.json");
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());

  return identical ? 0 : 1;
}
