// bench_store_durability — what crash safety costs, and what recovery
// buys.  Three write paths over the same serialized model text:
//
//   plain      — bare ofstream truncate-and-write (the pre-durability
//                store; a crash can tear it)
//   atomic     — temp + fsync + rename + dirsync with checksum footer
//                (durable file, no journal)
//   journaled  — the full LibraryStore commit: WAL append + fsync, then
//                the atomic snapshot write
//
// plus a recovery measurement: delete every materialized snapshot and
// time a LibraryStore open that replays the whole journal.  Emits
// BENCH_store.json (argv[1] overrides the path).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "library/durable.hpp"
#include "library/serialize.hpp"
#include "library/store.hpp"

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

powerplay::model::UserModelDefinition bench_model(const std::string& name) {
  powerplay::model::UserModelDefinition def;
  def.name = name;
  def.category = powerplay::model::Category::kStorage;
  def.documentation =
      "synthetic model used to benchmark the durability layer";
  def.params = {{"words", "entries", 1024, "", 1, 65536, true},
                {"bits", "word width", 24, "bits", 1, 64, true},
                {"banks", "banks", 4, "", 1, 64, true}};
  def.c_fullswing =
      "5e-12 + words*20e-15 + bits*500e-15 + words*bits*2.6e-15";
  def.area = "words * bits * 0.15e-9";
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerplay;
  constexpr int kSaves = 200;

  const fs::path root =
      fs::temp_directory_path() /
      ("pp_bench_store_" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root / "plain");
  fs::create_directories(root / "atomic");

  const std::string text = library::to_text(bench_model("probe"));
  std::printf("bench_store_durability: %d writes of %zu-byte models\n\n",
              kSaves, text.size());

  // 1. Plain buffered writes — fast and crash-unsafe.
  auto t0 = Clock::now();
  for (int i = 0; i < kSaves; ++i) {
    std::ofstream out(root / "plain" / ("m" + std::to_string(i)),
                      std::ios::trunc);
    out << text;
  }
  const double t_plain = seconds_since(t0);

  // 2. Atomic checksummed writes — durable files, no journal.
  t0 = Clock::now();
  for (int i = 0; i < kSaves; ++i) {
    library::atomic_write_file(root / "atomic" / ("m" + std::to_string(i)),
                               library::with_checksum_footer(text));
  }
  const double t_atomic = seconds_since(t0);

  // 3. The full journaled commit path.
  const fs::path store_root = root / "store";
  double t_journaled = 0;
  {
    library::LibraryStore store(store_root);
    t0 = Clock::now();
    for (int i = 0; i < kSaves; ++i) {
      store.save_model(bench_model("m" + std::to_string(i)));
    }
    t_journaled = seconds_since(t0);
  }

  // 4. Recovery: every snapshot gone, the journal rebuilds the store.
  for (const auto& entry : fs::directory_iterator(store_root / "models")) {
    fs::remove(entry.path());
  }
  t0 = Clock::now();
  library::LibraryStore recovered(store_root);
  const double t_recover = seconds_since(t0);
  const library::DurabilityStats stats = recovered.durability();
  const bool ok =
      recovered.list_models().size() == static_cast<std::size_t>(kSaves) &&
      stats.journal_replayed == static_cast<std::uint64_t>(kSaves);

  const double plain_per_s = kSaves / t_plain;
  const double atomic_per_s = kSaves / t_atomic;
  const double journaled_per_s = kSaves / t_journaled;
  const double replay_per_s = kSaves / t_recover;

  std::printf("plain ofstream    : %9.3f ms  (%10.0f writes/s)\n",
              t_plain * 1e3, plain_per_s);
  std::printf("atomic+checksum   : %9.3f ms  (%10.0f writes/s)\n",
              t_atomic * 1e3, atomic_per_s);
  std::printf("journaled commit  : %9.3f ms  (%10.0f writes/s)\n",
              t_journaled * 1e3, journaled_per_s);
  std::printf("durability factor : %.1fx over plain\n",
              t_journaled / t_plain);
  std::printf("recovery          : %9.3f ms  (%10.0f records/s, "
              "%d records)\n",
              t_recover * 1e3, replay_per_s, kSaves);
  std::printf("recovered intact  : %s\n", ok ? "yes" : "NO");

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"store_durability\",\n"
       << "  \"writes\": " << kSaves << ",\n"
       << "  \"model_bytes\": " << text.size() << ",\n"
       << "  \"plain_ms\": " << t_plain * 1e3 << ",\n"
       << "  \"atomic_ms\": " << t_atomic * 1e3 << ",\n"
       << "  \"journaled_ms\": " << t_journaled * 1e3 << ",\n"
       << "  \"plain_writes_per_s\": " << plain_per_s << ",\n"
       << "  \"atomic_writes_per_s\": " << atomic_per_s << ",\n"
       << "  \"journaled_writes_per_s\": " << journaled_per_s << ",\n"
       << "  \"recovery_ms\": " << t_recover * 1e3 << ",\n"
       << "  \"recovery_records\": " << kSaves << ",\n"
       << "  \"recovery_records_per_s\": " << replay_per_s << ",\n"
       << "  \"recovered_intact\": " << (ok ? "true" : "false") << "\n"
       << "}\n";

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_store.json");
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());

  fs::remove_all(root);
  return ok ? 0 : 1;
}
