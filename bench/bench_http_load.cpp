// bench_http_load — what the HTTP fast path buys, end to end over real
// sockets.  Three serving modes over the same preloaded library:
//
//   cold       — connection per request (HTTP/1.0 style), response
//                cache disabled: every hit pays connect + parse +
//                re-render
//   keepalive  — one persistent HTTP/1.1 connection, cache disabled:
//                connect cost amortized, render cost still paid
//   cached     — persistent connection + fingerprint-keyed response
//                cache: warm hits serve memoized bytes
//
// The bench verifies in-process that all three modes return
// byte-identical bodies (Date/ETag live in headers, so bodies must
// match exactly), then reports requests/s and p50/p99 latency per mode
// and emits BENCH_http.json.
//
//   ./bench_http_load [out.json]   full run (defaults to BENCH_http.json)
//   ./bench_http_load --smoke      tiny run, correctness checks only
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "library/store.hpp"
#include "studies/infopad.hpp"
#include "studies/vq.hpp"
#include "web/app.hpp"
#include "web/client.hpp"
#include "web/server.hpp"

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using namespace powerplay;

namespace {

struct ModeResult {
  std::string name;
  std::size_t requests = 0;
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;

  [[nodiscard]] double per_second() const {
    return seconds > 0 ? requests / seconds : 0;
  }
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * (sorted_us.size() - 1));
  return sorted_us[idx];
}

/// Serve the bench library on an ephemeral port.
struct Site {
  fs::path dir;
  std::unique_ptr<web::PowerPlayApp> app;
  std::unique_ptr<web::HttpServer> server;

  explicit Site(bool response_cache) {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("pp_bench_http_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::create_directories(dir);
    web::AppOptions app_options;
    app_options.response_cache = response_cache;
    app = std::make_unique<web::PowerPlayApp>(
        library::LibraryStore(dir), engine::EngineOptions{},
        engine::JobOptions{}, app_options);
    app->store().save_design(studies::make_luminance_impl1(app->registry()));
    app->store().save_design(studies::make_infopad(app->registry()));
    web::ServerOptions options;
    options.worker_count = 4;
    server = std::make_unique<web::HttpServer>(
        0, [this](const web::Request& r) { return app->handle(r); },
        options);
    server->start();
  }

  ~Site() {
    server->stop();
    app->shutdown();
    fs::remove_all(dir);
  }
};

ModeResult time_mode(const std::string& name, int iterations,
                     const std::vector<std::string>& targets,
                     const std::function<web::Response(const std::string&)>&
                         roundtrip) {
  ModeResult result;
  result.name = name;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(iterations) * targets.size());
  const auto t0 = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    for (const std::string& target : targets) {
      const auto r0 = Clock::now();
      const web::Response resp = roundtrip(target);
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - r0)
              .count());
      if (resp.status != 200) {
        std::fprintf(stderr, "%s: %s answered %d\n", name.c_str(),
                     target.c_str(), resp.status);
        std::exit(1);
      }
      result.requests += 1;
    }
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = percentile(latencies_us, 0.50);
  result.p99_us = percentile(latencies_us, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_http.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int iterations = smoke ? 3 : 60;

  // The GET mix a browsing session produces: spreadsheet render (the
  // expensive Play), CSV export, library page, remote API.
  const std::vector<std::string> targets = {
      "/design?user=bench&name=Luminance_1",
      "/design/csv?user=bench&name=Luminance_1",
      "/design?user=bench&name=InfoPad_System",
      "/library?user=bench",
      "/api/models",
  };

  Site cold_site(/*response_cache=*/false);
  Site cached_site(/*response_cache=*/true);

  // Byte-identity check first: every mode must serve the same body for
  // the same target (Date and ETag differ, but they live in headers).
  web::HttpConnection cached_conn(cached_site.server->port());
  for (const std::string& target : targets) {
    const std::string cold =
        web::http_get(cold_site.server->port(), target).body;
    const std::string first = cached_conn.get(target).body;   // fills cache
    const std::string warm = cached_conn.get(target).body;    // serves it
    if (cold != first || first != warm) {
      std::fprintf(stderr, "body mismatch between modes for %s\n",
                   target.c_str());
      return 1;
    }
  }
  std::printf("bodies byte-identical across modes for %zu targets\n",
              targets.size());

  // cold: fresh connection per request, no response cache.
  const ModeResult cold = time_mode(
      "cold", iterations, targets, [&](const std::string& target) {
        return web::http_get(cold_site.server->port(), target);
      });

  // keepalive: one persistent connection, still no response cache.
  web::HttpConnection keepalive_conn(cold_site.server->port());
  const ModeResult keepalive = time_mode(
      "keepalive", iterations, targets, [&](const std::string& target) {
        return keepalive_conn.get(target);
      });

  // cached: persistent connection + warm response cache.
  const ModeResult cached = time_mode(
      "cached", iterations, targets, [&](const std::string& target) {
        return cached_conn.get(target);
      });

  const double speedup_keepalive = keepalive.per_second() / cold.per_second();
  const double speedup_cached = cached.per_second() / cold.per_second();
  const web::ServerStats cache_stats = cached_site.server->stats();

  for (const ModeResult* m : {&cold, &keepalive, &cached}) {
    std::printf("%-9s : %6zu req in %7.3f s  = %9.0f req/s   "
                "p50 %7.1f us  p99 %7.1f us\n",
                m->name.c_str(), m->requests, m->seconds, m->per_second(),
                m->p50_us, m->p99_us);
  }
  std::printf("keepalive vs cold : %.2fx\n", speedup_keepalive);
  std::printf("cached    vs cold : %.2fx\n", speedup_cached);
  std::printf("connections_reused: %llu, parser_resumes: %llu\n",
              static_cast<unsigned long long>(cache_stats.connections_reused),
              static_cast<unsigned long long>(cache_stats.parser_resumes));

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"http_load\",\n"
       << "  \"targets\": " << targets.size() << ",\n"
       << "  \"iterations\": " << iterations << ",\n"
       << "  \"bodies_byte_identical\": true,\n"
       << "  \"cold_requests_per_s\": " << cold.per_second() << ",\n"
       << "  \"cold_p50_us\": " << cold.p50_us << ",\n"
       << "  \"cold_p99_us\": " << cold.p99_us << ",\n"
       << "  \"keepalive_requests_per_s\": " << keepalive.per_second()
       << ",\n"
       << "  \"keepalive_p50_us\": " << keepalive.p50_us << ",\n"
       << "  \"keepalive_p99_us\": " << keepalive.p99_us << ",\n"
       << "  \"cached_requests_per_s\": " << cached.per_second() << ",\n"
       << "  \"cached_p50_us\": " << cached.p50_us << ",\n"
       << "  \"cached_p99_us\": " << cached.p99_us << ",\n"
       << "  \"speedup_keepalive_vs_cold\": " << speedup_keepalive << ",\n"
       << "  \"speedup_cached_vs_cold\": " << speedup_cached << "\n"
       << "}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("wrote %s\n", out_path.c_str());

  if (smoke) {
    // Correctness only: caching must not change bytes, keep-alive must
    // actually reuse connections.  Timing thresholds are for full runs.
    return cached_site.server->connections_reused() >= 1 ? 0 : 1;
  }
  return speedup_cached >= 1.0 ? 0 : 1;
}
